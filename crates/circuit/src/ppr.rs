//! Transpilation of Clifford+T circuits into Pauli-product rotations.
//!
//! Litinski's *Game of Surface Codes* compiles a circuit by commuting every
//! Clifford gate past the non-Clifford rotations to the end of the circuit,
//! leaving a sequence of π/8 (and arbitrary-angle) Pauli-product rotations
//! followed by Pauli-product measurements. The `ftqc-baselines` crate uses
//! this form to model the compact/intermediate/fast block layouts
//! (paper §VII.C and Appendix A).
//!
//! The transformation is exact: `R_P · C = C · R_{C† P C}` for Clifford `C`,
//! so sweeping the circuit while maintaining a [`CliffordTableau`] of
//! `P ↦ C† P C` yields the rotation axes directly.

use crate::circuit::Circuit;
use crate::gate::{Angle, Gate};
use crate::pauli::PauliString;
use crate::tableau::CliffordTableau;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of an emitted rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RotationKind {
    /// π/8 rotation (angle ±π/4 in `Rz` convention) — a T-like rotation
    /// consuming one magic state.
    TLike,
    /// Arbitrary non-Clifford angle (e.g. Trotter `Rz(θ)`); consumes magic
    /// states according to the compiler's `TStatePolicy`.
    Arbitrary,
}

/// A Pauli-product rotation `exp(-i θ/2 · P)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PauliRotation {
    /// The rotation axis (phase normalised to `+1`; signs are folded into
    /// the angle).
    pub pauli: PauliString,
    /// Rotation angle (in the `Rz` convention: `Rz(θ) = exp(-i θ/2 Z)`).
    pub angle: Angle,
    /// T-like or arbitrary-angle.
    pub kind: RotationKind,
}

impl PauliRotation {
    /// Number of qubits the rotation acts on non-trivially.
    pub fn weight(&self) -> usize {
        self.pauli.weight()
    }
}

impl fmt::Display for PauliRotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R[{}]({})", self.pauli, self.angle)
    }
}

/// A circuit in Pauli-product-rotation form: rotations in time order, then
/// Pauli-product measurements, with the residual Clifford absorbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PprProgram {
    num_qubits: u32,
    rotations: Vec<PauliRotation>,
    measurements: Vec<PauliString>,
}

impl PprProgram {
    /// Transpiles a Clifford+T circuit into PPR form.
    ///
    /// Clifford gates are absorbed; every T/T†/non-Clifford-Rz becomes one
    /// rotation; measurements become Pauli-product measurements of the
    /// conjugated observable.
    ///
    /// # Panics
    ///
    /// Panics if a gate follows a measurement on the same qubit (the PPR
    /// form models terminal measurements only).
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.num_qubits();
        let mut tableau = CliffordTableau::identity(n as usize);
        let mut rotations = Vec::new();
        let mut measurements = Vec::new();
        let mut measured = vec![false; n as usize];
        for gate in circuit.iter() {
            for q in gate.qubits() {
                assert!(
                    !measured[q as usize],
                    "gate {gate} acts on already-measured qubit {q}"
                );
            }
            match gate {
                Gate::Measure(q) => {
                    // The observable keeps its sign: a `-1` phase means the
                    // classical outcome is flipped relative to measuring
                    // the unsigned product.
                    measured[*q as usize] = true;
                    measurements.push(tableau.image_z(*q).clone());
                }
                g if g.is_magic() => {
                    let q = g.qubits().next().expect("magic gates are single-qubit");
                    let angle = match g {
                        Gate::T(_) => Angle::new(0.25),
                        Gate::Tdg(_) => Angle::new(-0.25),
                        Gate::Rz(_, a) => *a,
                        _ => unreachable!("is_magic covers T/Tdg/Rz only"),
                    };
                    let mut pauli = tableau.image_z(q).clone();
                    // Fold a -1 sign on the axis into the angle: R_{-P}(θ) = R_P(-θ).
                    let angle = if pauli.phase().is_minus() {
                        angle.negate()
                    } else {
                        angle
                    };
                    pauli.set_phase(crate::pauli::Phase::PLUS);
                    let kind = if (angle.turns_of_pi().abs() * 4.0 - 1.0).abs() < 1e-12 {
                        RotationKind::TLike
                    } else {
                        RotationKind::Arbitrary
                    };
                    rotations.push(PauliRotation { pauli, angle, kind });
                }
                g => tableau.apply_pre(g),
            }
        }
        Self {
            num_qubits: n,
            rotations,
            measurements,
        }
    }

    /// Register size.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The rotations in time order.
    pub fn rotations(&self) -> &[PauliRotation] {
        &self.rotations
    }

    /// The terminal Pauli-product measurements.
    pub fn measurements(&self) -> &[PauliString] {
        &self.measurements
    }

    /// Number of magic-consuming rotations (`n_T` for the PPR baselines).
    pub fn t_count(&self) -> usize {
        self.rotations.len()
    }

    /// Maximum rotation weight (how "wide" the PPRs get — determines the
    /// ancilla cost of the constant-depth decomposition of \[30\]).
    pub fn max_weight(&self) -> usize {
        self.rotations
            .iter()
            .map(PauliRotation::weight)
            .max()
            .unwrap_or(0)
    }

    /// Mean rotation weight.
    pub fn mean_weight(&self) -> f64 {
        if self.rotations.is_empty() {
            return 0.0;
        }
        self.rotations
            .iter()
            .map(|r| r.weight() as f64)
            .sum::<f64>()
            / self.rotations.len() as f64
    }

    /// Depth of the rotation sequence when rotations acting on disjoint
    /// supports may run in parallel and commuting checks are skipped
    /// (greedy layering by support overlap).
    pub fn support_depth(&self) -> usize {
        let mut layer_of_qubit = vec![0usize; self.num_qubits as usize];
        let mut depth = 0;
        for r in &self.rotations {
            let lvl = r
                .pauli
                .support()
                .map(|(q, _)| layer_of_qubit[q as usize])
                .max()
                .unwrap_or(0)
                + 1;
            for (q, _) in r.pauli.support() {
                layer_of_qubit[q as usize] = lvl;
            }
            depth = depth.max(lvl);
        }
        depth
    }
}

impl fmt::Display for PprProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "PPR program: {} qubits, {} rotations, {} measurements",
            self.num_qubits,
            self.rotations.len(),
            self.measurements.len()
        )?;
        for r in &self.rotations {
            writeln!(f, "  {r}")?;
        }
        for m in &self.measurements {
            writeln!(f, "  M[{m}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_clifford_circuit_has_no_rotations() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).s(2).cz(1, 2);
        let ppr = PprProgram::from_circuit(&c);
        assert_eq!(ppr.t_count(), 0);
        assert!(ppr.rotations().is_empty());
    }

    #[test]
    fn bare_t_is_z_rotation() {
        let mut c = Circuit::new(1);
        c.t(0);
        let ppr = PprProgram::from_circuit(&c);
        assert_eq!(ppr.t_count(), 1);
        let r = &ppr.rotations()[0];
        assert_eq!(r.pauli.to_string(), "+Z");
        assert_eq!(r.angle, Angle::new(0.25));
        assert_eq!(r.kind, RotationKind::TLike);
    }

    #[test]
    fn h_conjugates_t_to_x_rotation() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let ppr = PprProgram::from_circuit(&c);
        assert_eq!(ppr.rotations()[0].pauli.to_string(), "+X");
    }

    #[test]
    fn cnot_spreads_rotation_support() {
        // CNOT(0,1) then T on target 1: Z_1 pulls back to Z_0 Z_1.
        let mut c = Circuit::new(2);
        c.cnot(0, 1).t(1);
        let ppr = PprProgram::from_circuit(&c);
        assert_eq!(ppr.rotations()[0].pauli.to_string(), "+ZZ");
    }

    #[test]
    fn sx_sign_folds_into_angle() {
        // Sx then Rz(θ): axis Sx† Z Sx = +Y, so angle keeps its sign;
        // Sxdg then Rz(θ): axis Sx Z Sx† = -Y -> normalised +Y, angle -θ.
        let mut c = Circuit::new(1);
        c.sx(0).rz_pi(0, 0.1);
        let ppr = PprProgram::from_circuit(&c);
        assert_eq!(ppr.rotations()[0].pauli.to_string(), "+Y");
        assert_eq!(ppr.rotations()[0].angle, Angle::new(0.1));

        let mut c2 = Circuit::new(1);
        c2.sxdg(0).rz_pi(0, 0.1);
        let ppr2 = PprProgram::from_circuit(&c2);
        assert_eq!(ppr2.rotations()[0].pauli.to_string(), "+Y");
        assert_eq!(ppr2.rotations()[0].angle, Angle::new(-0.1));
    }

    #[test]
    fn tdg_gets_negative_angle() {
        let mut c = Circuit::new(1);
        c.tdg(0);
        let ppr = PprProgram::from_circuit(&c);
        assert_eq!(ppr.rotations()[0].angle, Angle::new(-0.25));
        assert_eq!(ppr.rotations()[0].kind, RotationKind::TLike);
    }

    #[test]
    fn arbitrary_angle_classified() {
        let mut c = Circuit::new(1);
        c.rz_pi(0, 0.37);
        let ppr = PprProgram::from_circuit(&c);
        assert_eq!(ppr.rotations()[0].kind, RotationKind::Arbitrary);
    }

    #[test]
    fn clifford_rz_absorbed() {
        let mut c = Circuit::new(1);
        c.rz_pi(0, 0.5).t(0);
        let ppr = PprProgram::from_circuit(&c);
        // Rz(π/2) = S is Clifford: absorbed, and S† Z S = Z anyway.
        assert_eq!(ppr.t_count(), 1);
        assert_eq!(ppr.rotations()[0].pauli.to_string(), "+Z");
    }

    #[test]
    fn measurement_observable_conjugated() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).measure(0);
        let ppr = PprProgram::from_circuit(&c);
        assert_eq!(ppr.measurements().len(), 1);
        // C† Z_0 C for C = CX·H: CX pulls Z_0 to Z_0 (control unchanged),
        // then H maps Z_0 -> X_0.
        assert_eq!(ppr.measurements()[0].to_string(), "+XI");
    }

    #[test]
    #[should_panic(expected = "already-measured")]
    fn gate_after_measure_rejected() {
        let mut c = Circuit::new(1);
        c.measure(0).h(0);
        PprProgram::from_circuit(&c);
    }

    #[test]
    fn trotter_step_counts_match() {
        // ZZ-interaction Trotter pattern: CNOT Rz CNOT per edge.
        let mut c = Circuit::new(4);
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3)] {
            c.cnot(a, b).rz_pi(b, 0.07).cnot(a, b);
        }
        let ppr = PprProgram::from_circuit(&c);
        assert_eq!(ppr.t_count(), 3);
        // Each rotation axis is the two-body ZZ on the edge.
        assert_eq!(ppr.rotations()[0].pauli.to_string(), "+ZZII");
        assert_eq!(ppr.rotations()[1].pauli.to_string(), "+IZZI");
        assert_eq!(ppr.rotations()[2].pauli.to_string(), "+IIZZ");
        assert_eq!(ppr.max_weight(), 2);
        assert!((ppr.mean_weight() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn support_depth_layers_disjoint_rotations() {
        let mut c = Circuit::new(4);
        c.cnot(0, 1).rz_pi(1, 0.07).cnot(0, 1);
        c.cnot(2, 3).rz_pi(3, 0.07).cnot(2, 3);
        let ppr = PprProgram::from_circuit(&c);
        assert_eq!(ppr.support_depth(), 1);
    }
}
