//! The [`Circuit`] container and gate-count statistics.

use crate::dag::DagCircuit;
use crate::gate::{Angle, Gate, Qubit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered list of gates over a register of `num_qubits` qubits.
///
/// The order is program order; dependency structure is derived on demand via
/// [`Circuit::dag`]. Builder-style helpers exist for every gate in the
/// instruction set so benchmark generators read like circuit listings.
///
/// # Example
///
/// ```
/// use ftqc_circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.h(0).cnot(0, 1).cnot(1, 2).rz_pi(2, 0.25);
/// assert_eq!(c.num_qubits(), 3);
/// assert_eq!(c.counts().cnot, 2);
/// assert_eq!(c.t_count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: u32,
    gates: Vec<Gate>,
    name: String,
}

/// Why an index-based circuit edit was rejected. The non-panicking twin
/// of [`Circuit::push`]'s assertions, for callers applying untrusted
/// edits (interactive edit sessions, wire-format decoders).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// The gate references a qubit outside the register.
    QubitOutOfRange {
        /// The offending operand.
        qubit: Qubit,
        /// The register size.
        num_qubits: u32,
    },
    /// A two-qubit gate uses the same qubit twice.
    DuplicateOperand {
        /// The repeated operand.
        qubit: Qubit,
    },
    /// The gate index is outside the circuit.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// The circuit's gate count.
        len: usize,
    },
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "qubit {qubit} out of range (register has {num_qubits} qubits)"
            ),
            EditError::DuplicateOperand { qubit } => {
                write!(f, "two-qubit gate uses qubit {qubit} twice")
            }
            EditError::IndexOutOfRange { index, len } => {
                write!(
                    f,
                    "gate index {index} out of range (circuit has {len} gates)"
                )
            }
        }
    }
}

impl std::error::Error for EditError {}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Self {
            num_qubits,
            gates: Vec::new(),
            name: String::new(),
        }
    }

    /// Creates an empty circuit with a human-readable name (used in reports).
    pub fn with_name(num_qubits: u32, name: impl Into<String>) -> Self {
        Self {
            num_qubits,
            gates: Vec::new(),
            name: name.into(),
        }
    }

    /// The circuit's name ("" if unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the circuit name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit outside the register, or if a
    /// two-qubit gate uses the same qubit twice.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        for q in gate.qubits() {
            assert!(
                q < self.num_qubits,
                "gate {gate} references qubit {q} but the register has {} qubits",
                self.num_qubits
            );
        }
        if gate.is_two_qubit() {
            let qs: Vec<Qubit> = gate.qubits().collect();
            assert!(
                qs[0] != qs[1],
                "two-qubit gate {gate} uses qubit {} twice",
                qs[0]
            );
        }
        self.gates.push(gate);
        self
    }

    /// Validates `gate` against this register without modifying anything —
    /// the same checks [`Circuit::push`] panics on, as a `Result` for
    /// callers applying untrusted edits (the interactive edit sessions).
    ///
    /// # Errors
    ///
    /// [`EditError::QubitOutOfRange`] or [`EditError::DuplicateOperand`].
    pub fn check_gate(&self, gate: &Gate) -> Result<(), EditError> {
        for q in gate.qubits() {
            if q >= self.num_qubits {
                return Err(EditError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        if gate.is_two_qubit() {
            let qs: Vec<Qubit> = gate.qubits().collect();
            if qs[0] == qs[1] {
                return Err(EditError::DuplicateOperand { qubit: qs[0] });
            }
        }
        Ok(())
    }

    /// Inserts `gate` at `index` (existing gates at `index..` shift right;
    /// `index == len` appends).
    ///
    /// # Errors
    ///
    /// [`EditError::IndexOutOfRange`] when `index > len`, or the gate's own
    /// validation errors (see [`Circuit::check_gate`]).
    pub fn insert_gate(&mut self, index: usize, gate: Gate) -> Result<(), EditError> {
        if index > self.gates.len() {
            return Err(EditError::IndexOutOfRange {
                index,
                len: self.gates.len(),
            });
        }
        self.check_gate(&gate)?;
        self.gates.insert(index, gate);
        Ok(())
    }

    /// Removes and returns the gate at `index`.
    ///
    /// # Errors
    ///
    /// [`EditError::IndexOutOfRange`] when `index >= len`.
    pub fn remove_gate(&mut self, index: usize) -> Result<Gate, EditError> {
        if index >= self.gates.len() {
            return Err(EditError::IndexOutOfRange {
                index,
                len: self.gates.len(),
            });
        }
        Ok(self.gates.remove(index))
    }

    /// Replaces the gate at `index`, returning the previous gate.
    ///
    /// # Errors
    ///
    /// [`EditError::IndexOutOfRange`] when `index >= len`, or the new
    /// gate's own validation errors (see [`Circuit::check_gate`]).
    pub fn replace_gate(&mut self, index: usize, gate: Gate) -> Result<Gate, EditError> {
        if index >= self.gates.len() {
            return Err(EditError::IndexOutOfRange {
                index,
                len: self.gates.len(),
            });
        }
        self.check_gate(&gate)?;
        Ok(std::mem::replace(&mut self.gates[index], gate))
    }

    /// Appends all gates from an iterator (see also the [`Extend`] impl).
    pub fn append(&mut self, gates: impl IntoIterator<Item = Gate>) -> &mut Self {
        for g in gates {
            self.push(g);
        }
        self
    }

    /// Appends Hadamard on `q`.
    pub fn h(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::H(q))
    }

    /// Appends S on `q`.
    pub fn s(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::S(q))
    }

    /// Appends S† on `q`.
    pub fn sdg(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Sdg(q))
    }

    /// Appends √X on `q`.
    pub fn sx(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Sx(q))
    }

    /// Appends √X† on `q`.
    pub fn sxdg(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Sxdg(q))
    }

    /// Appends X on `q`.
    pub fn x(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::X(q))
    }

    /// Appends Y on `q`.
    pub fn y(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Y(q))
    }

    /// Appends Z on `q`.
    pub fn z(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Z(q))
    }

    /// Appends T on `q`.
    pub fn t(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::T(q))
    }

    /// Appends T† on `q`.
    pub fn tdg(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Tdg(q))
    }

    /// Appends `Rz(turns_of_pi · π)` on `q`.
    pub fn rz_pi(&mut self, q: Qubit, turns_of_pi: f64) -> &mut Self {
        self.push(Gate::Rz(q, Angle::new(turns_of_pi)))
    }

    /// Appends `Rz` with an explicit [`Angle`] on `q`.
    pub fn rz(&mut self, q: Qubit, angle: Angle) -> &mut Self {
        self.push(Gate::Rz(q, angle))
    }

    /// Appends CNOT with the given control and target.
    pub fn cnot(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.push(Gate::Cnot { control, target })
    }

    /// Appends CZ.
    pub fn cz(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.push(Gate::Cz(a, b))
    }

    /// Appends SWAP.
    pub fn swap(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.push(Gate::Swap(a, b))
    }

    /// Appends a Z-basis measurement on `q`.
    pub fn measure(&mut self, q: Qubit) -> &mut Self {
        self.push(Gate::Measure(q))
    }

    /// Per-mnemonic gate counts (the shape of the paper's Table I).
    pub fn counts(&self) -> GateCounts {
        let mut c = GateCounts::default();
        for g in &self.gates {
            match g {
                Gate::H(_) => c.h += 1,
                Gate::S(_) => c.s += 1,
                Gate::Sdg(_) => c.sdg += 1,
                Gate::Sx(_) | Gate::Sxdg(_) => c.sx += 1,
                Gate::X(_) => c.x += 1,
                Gate::Y(_) => c.y += 1,
                Gate::Z(_) => c.z += 1,
                Gate::T(_) => c.t += 1,
                Gate::Tdg(_) => c.tdg += 1,
                Gate::Rz(_, _) => c.rz += 1,
                Gate::Cnot { .. } => c.cnot += 1,
                Gate::Cz(_, _) => c.cz += 1,
                Gate::Swap(_, _) => c.swap += 1,
                Gate::Measure(_) => c.measure += 1,
            }
        }
        c
    }

    /// Number of magic-state-consuming gates (T, T†, non-Clifford Rz).
    ///
    /// This is the `n_T` of the paper's lower bound, Eq. (2), under the
    /// default one-state-per-rotation policy.
    pub fn t_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_magic()).count()
    }

    /// Circuit depth: length of the longest dependency chain, counting every
    /// gate as one layer.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits as usize];
        let mut depth = 0;
        for g in &self.gates {
            let lvl = g.qubits().map(|q| level[q as usize]).max().unwrap_or(0) + 1;
            for q in g.qubits() {
                level[q as usize] = lvl;
            }
            depth = depth.max(lvl);
        }
        depth
    }

    /// Builds the dependency DAG of this circuit.
    pub fn dag(&self) -> DagCircuit {
        DagCircuit::from_circuit(self)
    }

    /// Appends another circuit (registers must match in size).
    ///
    /// # Panics
    ///
    /// Panics if `other` has a different register size.
    pub fn compose(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "composed circuits must have equal register sizes"
        );
        self.gates.extend_from_slice(&other.gates);
        self
    }

    /// The circuit repeated `k` times — e.g. turning a single Trotter step
    /// into a `k`-step evolution (the paper evaluates single steps; deeper
    /// evolutions scale `n_T` and the lower bound linearly).
    ///
    /// # Example
    ///
    /// ```
    /// use ftqc_circuit::Circuit;
    ///
    /// let mut step = Circuit::new(2);
    /// step.cnot(0, 1).rz_pi(1, 0.1).cnot(0, 1);
    /// let evolution = step.repeated(3);
    /// assert_eq!(evolution.len(), 9);
    /// assert_eq!(evolution.t_count(), 3);
    /// ```
    pub fn repeated(&self, k: u32) -> Circuit {
        let mut out = Circuit::with_name(
            self.num_qubits,
            if self.name.is_empty() {
                String::new()
            } else {
                format!("{}-x{k}", self.name)
            },
        );
        for _ in 0..k {
            out.gates.extend_from_slice(&self.gates);
        }
        out
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        self.append(iter);
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

/// Gate counts by mnemonic, mirroring the paper's Table I rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateCounts {
    /// Hadamard count.
    pub h: usize,
    /// S count.
    pub s: usize,
    /// S† count.
    pub sdg: usize,
    /// √X count (includes √X†).
    pub sx: usize,
    /// Pauli-X count.
    pub x: usize,
    /// Pauli-Y count.
    pub y: usize,
    /// Pauli-Z count.
    pub z: usize,
    /// T count.
    pub t: usize,
    /// T† count.
    pub tdg: usize,
    /// Rz count.
    pub rz: usize,
    /// CNOT count.
    pub cnot: usize,
    /// CZ count.
    pub cz: usize,
    /// SWAP count.
    pub swap: usize,
    /// Measurement count.
    pub measure: usize,
}

impl GateCounts {
    /// Total number of gates counted.
    pub fn total(&self) -> usize {
        self.h
            + self.s
            + self.sdg
            + self.sx
            + self.x
            + self.y
            + self.z
            + self.t
            + self.tdg
            + self.rz
            + self.cnot
            + self.cz
            + self.swap
            + self.measure
    }

    /// Count of gates that consume a magic state under the default policy
    /// (T + T† + Rz; the benchmark generators only emit non-Clifford Rz).
    pub fn t_like(&self) -> usize {
        self.t + self.tdg + self.rz
    }
}

impl fmt::Display for GateCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut item = |f: &mut fmt::Formatter<'_>, name: &str, n: usize| -> fmt::Result {
            if n > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{name}: {n}")?;
            }
            Ok(())
        };
        item(f, "CNOT", self.cnot)?;
        item(f, "RZ", self.rz)?;
        item(f, "H", self.h)?;
        item(f, "S", self.s)?;
        item(f, "Sdg", self.sdg)?;
        item(f, "SX", self.sx)?;
        item(f, "T", self.t)?;
        item(f, "Tdg", self.tdg)?;
        item(f, "X", self.x)?;
        item(f, "Y", self.y)?;
        item(f, "Z", self.z)?;
        item(f, "CZ", self.cz)?;
        item(f, "SWAP", self.swap)?;
        item(f, "measure", self.measure)?;
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).t(1).measure(1);
        assert_eq!(c.len(), 4);
        assert_eq!(c.counts().h, 1);
        assert_eq!(c.counts().cnot, 1);
        assert_eq!(c.counts().measure, 1);
    }

    #[test]
    #[should_panic(expected = "references qubit 5")]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        c.h(5);
    }

    #[test]
    #[should_panic(expected = "uses qubit 1 twice")]
    fn push_rejects_duplicate_operands() {
        let mut c = Circuit::new(2);
        c.cnot(1, 1);
    }

    #[test]
    fn t_count_includes_rz() {
        let mut c = Circuit::new(1);
        c.t(0).tdg(0).rz_pi(0, 0.1).rz_pi(0, 0.5); // last Rz is Clifford (S)
        assert_eq!(c.t_count(), 3);
    }

    #[test]
    fn depth_tracks_longest_chain() {
        let mut c = Circuit::new(3);
        // q0: h-cx ; q1: cx-cx ; q2: cx  -> depth 3
        c.h(0).cnot(0, 1).cnot(1, 2);
        assert_eq!(c.depth(), 3);

        let mut parallel = Circuit::new(4);
        parallel.h(0).h(1).h(2).h(3);
        assert_eq!(parallel.depth(), 1);
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(5);
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
        assert_eq!(c.t_count(), 0);
        assert_eq!(c.counts().total(), 0);
    }

    #[test]
    fn compose_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cnot(0, 1);
        a.compose(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "equal register sizes")]
    fn compose_rejects_mismatched_registers() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        a.compose(&b);
    }

    #[test]
    fn extend_works() {
        let mut c = Circuit::new(2);
        c.extend(vec![Gate::H(0), Gate::H(1)]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn counts_display_nonempty() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).h(0);
        let s = c.counts().to_string();
        assert!(s.contains("CNOT: 1"));
        assert!(s.contains("H: 1"));
        assert_eq!(Circuit::new(1).counts().to_string(), "(empty)");
    }

    #[test]
    fn named_circuit() {
        let c = Circuit::with_name(4, "ising-2x2");
        assert_eq!(c.name(), "ising-2x2");
    }

    #[test]
    fn repeated_scales_counts_linearly() {
        let mut step = Circuit::with_name(3, "step");
        step.h(0).cnot(0, 1).t(2);
        let evo = step.repeated(4);
        assert_eq!(evo.len(), 12);
        assert_eq!(evo.t_count(), 4);
        assert_eq!(evo.counts().h, 4);
        assert_eq!(evo.name(), "step-x4");
        // Depth also scales: each copy depends on the previous via q0/q1/q2.
        assert_eq!(evo.depth(), 4 * step.depth());
    }

    #[test]
    fn repeated_zero_is_empty() {
        let mut step = Circuit::new(2);
        step.h(0);
        assert!(step.repeated(0).is_empty());
    }
}
