//! A dense state-vector simulator for small registers.
//!
//! The stabilizer simulator ([`crate::stabilizer`]) verifies the Clifford
//! fragment of the toolchain; this module extends the verification oracle to
//! the full Clifford+T+`Rz(θ)` gate set by brute-force simulation of the
//! 2ⁿ-dimensional state. It exists for *testing and verification* — the
//! compiler never simulates amplitudes — so the implementation favours
//! clarity over vectorisation and is practical up to roughly 20 qubits.
//!
//! The main consumer is the semantic schedule verifier in `ftqc-compiler`,
//! which replays a compiled lattice-surgery schedule back into a logical
//! circuit and checks it against the input program with
//! [`StateVector::equiv_up_to_global_phase`].

use crate::circuit::Circuit;
use crate::gate::{Gate, Qubit};
use std::fmt;

/// A complex amplitude. A deliberately minimal hand-rolled type: the
/// workspace's dependency policy does not include `num-complex`, and the
/// simulator needs only add/mul/conj/norm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}` for `θ` in radians.
    pub fn cis(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl std::ops::Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}i", self.re, -self.im)
        }
    }
}

/// Hard cap on register width: a 2²⁴-amplitude vector is 256 MiB and takes
/// seconds per gate, well past the point where the stabilizer simulator or
/// tableau comparison is the right tool.
pub const MAX_QUBITS: u32 = 24;

/// A dense 2ⁿ-amplitude quantum state.
///
/// Qubit `q` corresponds to bit `q` of the basis-state index (little-endian:
/// basis state 0b10 has qubit 1 in |1⟩).
///
/// # Example
///
/// ```
/// use ftqc_circuit::{Circuit, StateVector};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cnot(0, 1);
/// let psi = StateVector::from_circuit(&bell);
/// assert!((psi.prob_of_basis(0b00) - 0.5).abs() < 1e-12);
/// assert!((psi.prob_of_basis(0b11) - 0.5).abs() < 1e-12);
/// assert!(psi.prob_of_basis(0b01) < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: u32,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state |0…0⟩ on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_QUBITS` (the dense representation would not fit).
    pub fn new(n: u32) -> Self {
        assert!(
            n <= MAX_QUBITS,
            "dense simulation of {n} qubits exceeds the {MAX_QUBITS}-qubit cap"
        );
        let mut amps = vec![C64::ZERO; 1usize << n];
        amps[0] = C64::ONE;
        Self { n, amps }
    }

    /// Runs `circuit` on |0…0⟩ and returns the final state.
    ///
    /// Measurements are not supported here (they would make the result a
    /// distribution, not a state); use [`StateVector::measure_z`] explicitly.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains a measurement or exceeds [`MAX_QUBITS`].
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut s = Self::new(circuit.num_qubits());
        for g in circuit.iter() {
            s.apply(g);
        }
        s
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.n
    }

    /// The raw amplitudes, indexed by little-endian basis state.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// The amplitude of basis state `idx`.
    pub fn amplitude(&self, idx: usize) -> C64 {
        self.amps[idx]
    }

    /// `|⟨idx|ψ⟩|²`.
    pub fn prob_of_basis(&self, idx: usize) -> f64 {
        self.amps[idx].norm_sqr()
    }

    /// The squared norm (1 for any state produced by unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// The inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the register widths differ.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n, other.n, "inner product of different-width states");
        self.amps
            .iter()
            .zip(&other.amps)
            .fold(C64::ZERO, |acc, (a, b)| acc + a.conj() * *b)
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Whether the two states are equal up to a global phase, within `tol`
    /// on the fidelity defect.
    pub fn equiv_up_to_global_phase(&self, other: &StateVector, tol: f64) -> bool {
        self.n == other.n && (1.0 - self.fidelity(other)).abs() < tol
    }

    /// Probability that a Z-basis measurement of `q` yields 1.
    pub fn prob_one(&self, q: Qubit) -> f64 {
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Measures qubit `q` in the Z basis, collapsing the state.
    ///
    /// `sample` is a uniform draw from `[0, 1)` supplied by the caller (the
    /// simulator itself is deterministic so tests stay reproducible): the
    /// outcome is 1 when `sample < P(1)`.
    pub fn measure_z(&mut self, q: Qubit, sample: f64) -> bool {
        let p1 = self.prob_one(q);
        let outcome = sample < p1;
        let keep_mask = 1usize << q;
        let p = if outcome { p1 } else { 1.0 - p1 };
        let scale = if p > 0.0 { 1.0 / p.sqrt() } else { 0.0 };
        for (i, a) in self.amps.iter_mut().enumerate() {
            let bit_is_one = i & keep_mask != 0;
            if bit_is_one == outcome {
                *a = a.scale(scale);
            } else {
                *a = C64::ZERO;
            }
        }
        outcome
    }

    /// Applies a single-qubit unitary given by its 2×2 matrix
    /// `[[m00, m01], [m10, m11]]` to qubit `q`.
    pub fn apply_1q(&mut self, q: Qubit, m: [[C64; 2]; 2]) {
        debug_assert!(
            q < self.n,
            "qubit {q} out of range for {}-qubit state",
            self.n
        );
        let mask = 1usize << q;
        for i in 0..self.amps.len() {
            if i & mask == 0 {
                let j = i | mask;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Applies a controlled bit-flip (CNOT) with the given control and
    /// target.
    pub fn apply_cnot(&mut self, control: Qubit, target: Qubit) {
        assert_ne!(control, target, "CNOT control and target must differ");
        let cm = 1usize << control;
        let tm = 1usize << target;
        for i in 0..self.amps.len() {
            if i & cm != 0 && i & tm == 0 {
                let j = i | tm;
                self.amps.swap(i, j);
            }
        }
    }

    /// Applies a controlled phase flip (CZ).
    pub fn apply_cz(&mut self, a: Qubit, b: Qubit) {
        assert_ne!(a, b, "CZ operands must differ");
        let am = 1usize << a;
        let bm = 1usize << b;
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & am != 0 && i & bm != 0 {
                *amp = -*amp;
            }
        }
    }

    /// Applies SWAP.
    pub fn apply_swap(&mut self, a: Qubit, b: Qubit) {
        assert_ne!(a, b, "SWAP operands must differ");
        let am = 1usize << a;
        let bm = 1usize << b;
        for i in 0..self.amps.len() {
            // Swap pairs where bit a = 1, bit b = 0 with their mirror.
            if i & am != 0 && i & bm == 0 {
                let j = (i & !am) | bm;
                self.amps.swap(i, j);
            }
        }
    }

    /// Applies a phase `e^{iθ}` to every basis state where qubit `q` is 1
    /// (i.e. `Rz(2θ)` up to global phase; used for the Z-diagonal gates).
    pub fn apply_phase(&mut self, q: Qubit, theta: f64) {
        let mask = 1usize << q;
        let ph = C64::cis(theta);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & mask != 0 {
                *amp = *amp * ph;
            }
        }
    }

    /// Applies one gate.
    ///
    /// All gates apply the *textbook* unitary (e.g. `Rz(θ) =
    /// diag(e^{-iθ/2}, e^{iθ/2})`), so composed circuits agree with Qiskit
    /// conventions up to global phase.
    ///
    /// # Panics
    ///
    /// Panics on [`Gate::Measure`]; measurement collapse needs a sample
    /// source, use [`StateVector::measure_z`].
    pub fn apply(&mut self, gate: &Gate) {
        use std::f64::consts::FRAC_1_SQRT_2 as R;
        match *gate {
            Gate::H(q) => self.apply_1q(
                q,
                [
                    [C64::new(R, 0.0), C64::new(R, 0.0)],
                    [C64::new(R, 0.0), C64::new(-R, 0.0)],
                ],
            ),
            Gate::X(q) => self.apply_1q(q, [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]),
            Gate::Y(q) => self.apply_1q(q, [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]]),
            Gate::Z(q) => self.apply_phase(q, std::f64::consts::PI),
            Gate::S(q) => self.apply_phase(q, std::f64::consts::FRAC_PI_2),
            Gate::Sdg(q) => self.apply_phase(q, -std::f64::consts::FRAC_PI_2),
            Gate::T(q) => self.apply_phase(q, std::f64::consts::FRAC_PI_4),
            Gate::Tdg(q) => self.apply_phase(q, -std::f64::consts::FRAC_PI_4),
            Gate::Rz(q, a) => self.apply_phase(q, a.radians()),
            Gate::Sx(q) => self.apply_1q(
                q,
                [
                    [C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
                    [C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
                ],
            ),
            Gate::Sxdg(q) => self.apply_1q(
                q,
                [
                    [C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
                    [C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
                ],
            ),
            Gate::Cnot { control, target } => self.apply_cnot(control, target),
            Gate::Cz(a, b) => self.apply_cz(a, b),
            Gate::Swap(a, b) => self.apply_swap(a, b),
            Gate::Measure(_) => {
                panic!("StateVector::apply does not support measurement; use measure_z")
            }
        }
    }

    /// Applies every gate of an iterator in order.
    pub fn apply_all<'a>(&mut self, gates: impl IntoIterator<Item = &'a Gate>) {
        for g in gates {
            self.apply(g);
        }
    }
}

/// Checks that two measurement-free circuits implement the same unitary up
/// to global phase, by comparing their action on a basis of probe states.
///
/// Comparing action on |0…0⟩ alone can miss diagonal discrepancies, so the
/// probes are |0…0⟩ plus, per qubit `q`, the states `H_q|0…0⟩` and
/// `H_q S_q |0…0⟩`-style superpositions reached through a layer of H on all
/// qubits. Together these distinguish any two unitaries that differ by more
/// than a global phase on the computational subspace generated by the
/// circuit gates — in practice (and in our property tests) disagreement on
/// any probe is caught.
///
/// # Panics
///
/// Panics if the circuits have different widths, contain measurements, or
/// exceed [`MAX_QUBITS`].
pub fn circuits_equivalent(a: &Circuit, b: &Circuit, tol: f64) -> bool {
    assert_eq!(
        a.num_qubits(),
        b.num_qubits(),
        "equivalence check on different register widths"
    );
    let n = a.num_qubits();

    // Each probe is a preparation circuit applied before `a` and `b`.
    let mut probes: Vec<Circuit> = Vec::new();
    // Probe 1: |0…0⟩.
    probes.push(Circuit::new(n));
    // Probe 2: uniform superposition (H on every qubit).
    let mut all_h = Circuit::new(n);
    for q in 0..n {
        all_h.h(q);
    }
    probes.push(all_h);
    // Probes 3..: single-qubit |+i⟩ probes to catch phase differences
    // localised on one qubit.
    for q in 0..n {
        let mut p = Circuit::new(n);
        p.h(q).s(q);
        probes.push(p);
    }

    probes.iter().all(|prep| {
        let run = |c: &Circuit| {
            let mut s = StateVector::new(n);
            s.apply_all(prep.iter());
            s.apply_all(c.iter());
            s
        };
        run(a).equiv_up_to_global_phase(&run(b), tol)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Angle;

    const TOL: f64 = 1e-10;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < TOL, "{a} != {b}");
    }

    #[test]
    fn zero_state_is_basis_zero() {
        let s = StateVector::new(3);
        assert_close(s.prob_of_basis(0), 1.0);
        assert_close(s.norm_sqr(), 1.0);
        assert_eq!(s.num_qubits(), 3);
        assert_eq!(s.amplitudes().len(), 8);
    }

    #[test]
    fn hadamard_splits_amplitude() {
        let mut s = StateVector::new(1);
        s.apply(&Gate::H(0));
        assert_close(s.prob_of_basis(0), 0.5);
        assert_close(s.prob_of_basis(1), 0.5);
    }

    #[test]
    fn x_flips_basis() {
        let mut s = StateVector::new(2);
        s.apply(&Gate::X(1));
        assert_close(s.prob_of_basis(0b10), 1.0);
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let s = StateVector::from_circuit(&c);
        assert_close(s.prob_of_basis(0b00), 0.5);
        assert_close(s.prob_of_basis(0b11), 0.5);
        assert_close(s.prob_of_basis(0b01), 0.0);
        assert_close(s.prob_of_basis(0b10), 0.0);
    }

    #[test]
    fn ghz_state() {
        let mut c = Circuit::new(4);
        c.h(0);
        for q in 0..3 {
            c.cnot(q, q + 1);
        }
        let s = StateVector::from_circuit(&c);
        assert_close(s.prob_of_basis(0b0000), 0.5);
        assert_close(s.prob_of_basis(0b1111), 0.5);
        assert_close(s.norm_sqr(), 1.0);
    }

    #[test]
    fn t_gate_phase() {
        // T|+⟩ has relative phase e^{iπ/4} on |1⟩.
        let mut s = StateVector::new(1);
        s.apply(&Gate::H(0));
        s.apply(&Gate::T(0));
        let a1 = s.amplitude(1);
        let expect = C64::cis(std::f64::consts::FRAC_PI_4).scale(std::f64::consts::FRAC_1_SQRT_2);
        assert!((a1.re - expect.re).abs() < TOL);
        assert!((a1.im - expect.im).abs() < TOL);
    }

    #[test]
    fn s_equals_tt() {
        let mut a = Circuit::new(1);
        a.s(0);
        let mut b = Circuit::new(1);
        b.t(0).t(0);
        assert!(circuits_equivalent(&a, &b, TOL));
    }

    #[test]
    fn z_equals_ss() {
        let mut a = Circuit::new(1);
        a.z(0);
        let mut b = Circuit::new(1);
        b.s(0).s(0);
        assert!(circuits_equivalent(&a, &b, TOL));
    }

    #[test]
    fn sx_squared_is_x() {
        let mut a = Circuit::new(1);
        a.x(0);
        let mut b = Circuit::new(1);
        b.sx(0).sx(0);
        assert!(circuits_equivalent(&a, &b, TOL));
    }

    #[test]
    fn sx_sxdg_cancels() {
        let mut a = Circuit::new(1);
        a.sx(0).sxdg(0);
        let b = Circuit::new(1);
        assert!(circuits_equivalent(&a, &b, TOL));
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let mut a = Circuit::new(1);
        a.h(0).x(0).h(0);
        let mut b = Circuit::new(1);
        b.z(0);
        assert!(circuits_equivalent(&a, &b, TOL));
    }

    #[test]
    fn rz_matches_t_at_quarter_pi() {
        let mut a = Circuit::new(1);
        a.t(0);
        let mut b = Circuit::new(1);
        b.rz(0, Angle::new(0.25));
        assert!(circuits_equivalent(&a, &b, TOL));
    }

    #[test]
    fn cz_is_symmetric_and_matches_h_cx_h() {
        let mut a = Circuit::new(2);
        a.cz(0, 1);
        let mut b = Circuit::new(2);
        b.h(1).cnot(0, 1).h(1);
        assert!(circuits_equivalent(&a, &b, TOL));
        let mut c = Circuit::new(2);
        c.cz(1, 0);
        assert!(circuits_equivalent(&a, &c, TOL));
    }

    #[test]
    fn swap_matches_three_cnots() {
        let mut a = Circuit::new(2);
        a.swap(0, 1);
        let mut b = Circuit::new(2);
        b.cnot(0, 1).cnot(1, 0).cnot(0, 1);
        assert!(circuits_equivalent(&a, &b, TOL));
    }

    #[test]
    fn inequivalent_circuits_detected() {
        let mut a = Circuit::new(2);
        a.h(0).cnot(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).cnot(0, 1).t(1);
        assert!(!circuits_equivalent(&a, &b, TOL));
    }

    #[test]
    fn diagonal_difference_detected() {
        // Differ only by a phase on |1⟩: identical on |0⟩ probe, caught by
        // the superposition probes.
        let a = Circuit::new(1);
        let mut b = Circuit::new(1);
        b.t(0);
        assert!(!circuits_equivalent(&a, &b, TOL));
    }

    #[test]
    fn swapped_cnot_direction_detected() {
        let mut a = Circuit::new(2);
        a.cnot(0, 1);
        let mut b = Circuit::new(2);
        b.cnot(1, 0);
        assert!(!circuits_equivalent(&a, &b, TOL));
    }

    #[test]
    fn global_phase_ignored() {
        // Z X Z X = -I: equals identity only up to global phase.
        let mut a = Circuit::new(1);
        a.z(0).x(0).z(0).x(0);
        let b = Circuit::new(1);
        assert!(circuits_equivalent(&a, &b, TOL));
    }

    #[test]
    fn measure_collapses_plus_state() {
        let mut s = StateVector::new(1);
        s.apply(&Gate::H(0));
        let mut s0 = s.clone();
        // sample ≥ P(1): outcome 0.
        assert!(!s0.measure_z(0, 0.9));
        assert_close(s0.prob_of_basis(0), 1.0);
        // sample < P(1): outcome 1.
        let mut s1 = s;
        assert!(s1.measure_z(0, 0.1));
        assert_close(s1.prob_of_basis(1), 1.0);
    }

    #[test]
    fn measure_entangled_pair_correlates() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let mut s = StateVector::from_circuit(&c);
        let one = s.measure_z(0, 0.0); // force outcome 1
        assert!(one);
        assert_close(s.prob_one(1), 1.0);
    }

    #[test]
    fn inner_product_orthogonal_states() {
        let s0 = StateVector::new(1);
        let mut s1 = StateVector::new(1);
        s1.apply(&Gate::X(0));
        assert_close(s0.inner(&s1).abs(), 0.0);
        assert_close(s0.fidelity(&s0), 1.0);
    }

    #[test]
    fn prob_one_of_plus_state() {
        let mut s = StateVector::new(2);
        s.apply(&Gate::H(1));
        assert_close(s.prob_one(1), 0.5);
        assert_close(s.prob_one(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "measurement")]
    fn apply_rejects_measure() {
        let mut s = StateVector::new(1);
        s.apply(&Gate::Measure(0));
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn width_cap_enforced() {
        let _ = StateVector::new(MAX_QUBITS + 1);
    }

    #[test]
    fn c64_algebra() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        let p = a * b;
        assert_close(p.re, 5.0);
        assert_close(p.im, 5.0);
        assert_close((a + b).re, 4.0);
        assert_close((a - b).im, 3.0);
        assert_close(a.conj().im, -2.0);
        assert_close(a.norm_sqr(), 5.0);
        assert_close(C64::cis(0.0).re, 1.0);
        assert_eq!((-C64::ONE).re, -1.0);
        assert!(C64::ONE.to_string().contains("1.0000"));
        assert!(C64::new(0.0, -1.0).to_string().contains("-1.0000i"));
    }
}
