//! Reader/writer for the OpenQASM 2 subset used by QASMBench-style files.
//!
//! The paper evaluates GHZ/adder/multiplier circuits from QASMBench \[26\].
//! This module lets the original `.qasm` files be fed to the compiler when
//! available; the `ftqc-benchmarks` crate provides synthetic generators with
//! identical gate counts for fully offline runs.
//!
//! Supported statements: `OPENQASM 2.0`, `include`, `qreg`, `creg`, gate
//! applications from the compiler's instruction set (`h s sdg sx sxdg x y z
//! t tdg rz cx cz swap`), `measure`, and `barrier` (ignored). Angle
//! expressions accept decimal literals and `±a*pi/b` fractions.

use crate::circuit::Circuit;
use crate::gate::{Angle, Gate, Qubit};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced when parsing OpenQASM input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QasmError {
    line: usize,
    message: String,
}

impl QasmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for QasmError {}

/// Parses an OpenQASM 2 source string into a [`Circuit`].
///
/// Multiple `qreg` declarations are flattened into one register in
/// declaration order. Classical registers and the classical targets of
/// `measure` are accepted and discarded (the compiler models measurement as
/// a qubit-level operation).
///
/// # Errors
///
/// Returns a [`QasmError`] describing the first offending statement.
///
/// # Example
///
/// ```
/// use ftqc_circuit::parse_qasm;
///
/// let src = r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     h q[0];
///     cx q[0], q[1];
///     rz(pi/4) q[1];
/// "#;
/// let c = parse_qasm(src)?;
/// assert_eq!(c.num_qubits(), 2);
/// assert_eq!(c.len(), 3);
/// # Ok::<(), ftqc_circuit::QasmError>(())
/// ```
pub fn parse_qasm(src: &str) -> Result<Circuit, QasmError> {
    let mut regs: Vec<(String, u32)> = Vec::new();
    let mut reg_offset: HashMap<String, u32> = HashMap::new();
    let mut total_qubits = 0u32;
    let mut gates: Vec<Gate> = Vec::new();

    for (lineno, raw_line) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parse_statement(
                stmt,
                lineno,
                &mut regs,
                &mut reg_offset,
                &mut total_qubits,
                &mut gates,
            )?;
        }
    }

    let mut circuit = Circuit::new(total_qubits);
    for g in gates {
        circuit.push(g);
    }
    Ok(circuit)
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_statement(
    stmt: &str,
    lineno: usize,
    regs: &mut Vec<(String, u32)>,
    reg_offset: &mut HashMap<String, u32>,
    total_qubits: &mut u32,
    gates: &mut Vec<Gate>,
) -> Result<(), QasmError> {
    let lower = stmt.to_ascii_lowercase();
    if lower.starts_with("openqasm") || lower.starts_with("include") || lower.starts_with("creg") {
        return Ok(());
    }
    if lower.starts_with("barrier") {
        return Ok(());
    }
    if lower.starts_with("qreg") {
        let rest = stmt["qreg".len()..].trim();
        let (name, size) = parse_reg_decl(rest)
            .ok_or_else(|| QasmError::new(lineno, format!("malformed qreg '{stmt}'")))?;
        if reg_offset.contains_key(&name) {
            return Err(QasmError::new(lineno, format!("duplicate qreg '{name}'")));
        }
        reg_offset.insert(name.clone(), *total_qubits);
        regs.push((name, size));
        *total_qubits += size;
        return Ok(());
    }
    if lower.starts_with("measure") {
        // "measure q[i] -> c[i]" or "measure q -> c" (whole register)
        let body = stmt["measure".len()..].trim();
        let src = body.split("->").next().unwrap_or("").trim();
        let operands = resolve_operands(src, regs, reg_offset, lineno)?;
        for q in operands {
            gates.push(Gate::Measure(q));
        }
        return Ok(());
    }

    // Gate application: name[(params)] operands
    let (head, operand_str) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(i) => (&stmt[..i], stmt[i..].trim()),
        None => {
            return Err(QasmError::new(
                lineno,
                format!("malformed statement '{stmt}'"),
            ))
        }
    };
    let (name, param) = match head.find('(') {
        Some(i) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| QasmError::new(lineno, "unbalanced parenthesis"))?;
            (&head[..i], Some(&head[i + 1..close]))
        }
        None => (head, None),
    };

    let mut operands: Vec<Qubit> = Vec::new();
    for part in operand_str.split(',') {
        let resolved = resolve_operands(part.trim(), regs, reg_offset, lineno)?;
        operands.extend(resolved);
    }

    let name = name.to_ascii_lowercase();
    let require = |n: usize| -> Result<(), QasmError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(QasmError::new(
                lineno,
                format!(
                    "gate '{name}' expects {n} operand(s), got {}",
                    operands.len()
                ),
            ))
        }
    };

    match name.as_str() {
        "h" | "s" | "sdg" | "sx" | "sxdg" | "x" | "y" | "z" | "t" | "tdg" | "id" => {
            // Single-qubit mnemonics may be applied to a whole register;
            // resolve_operands already expanded that case.
            for &q in &operands {
                let g = match name.as_str() {
                    "h" => Gate::H(q),
                    "s" => Gate::S(q),
                    "sdg" => Gate::Sdg(q),
                    "sx" => Gate::Sx(q),
                    "sxdg" => Gate::Sxdg(q),
                    "x" => Gate::X(q),
                    "y" => Gate::Y(q),
                    "z" => Gate::Z(q),
                    "t" => Gate::T(q),
                    "tdg" => Gate::Tdg(q),
                    "id" => continue,
                    _ => unreachable!(),
                };
                gates.push(g);
            }
        }
        "rz" | "u1" | "p" => {
            require(1)?;
            let angle = parse_angle(param.ok_or_else(|| {
                QasmError::new(lineno, format!("'{name}' requires an angle parameter"))
            })?)
            .map_err(|e| QasmError::new(lineno, e))?;
            gates.push(Gate::Rz(operands[0], angle));
        }
        "cx" | "cnot" => {
            require(2)?;
            gates.push(Gate::Cnot {
                control: operands[0],
                target: operands[1],
            });
        }
        "cz" => {
            require(2)?;
            gates.push(Gate::Cz(operands[0], operands[1]));
        }
        "swap" => {
            require(2)?;
            gates.push(Gate::Swap(operands[0], operands[1]));
        }
        other => {
            return Err(QasmError::new(
                lineno,
                format!("unsupported gate '{other}' (supported: h s sdg sx sxdg x y z t tdg rz cx cz swap measure)"),
            ))
        }
    }
    Ok(())
}

fn parse_reg_decl(s: &str) -> Option<(String, u32)> {
    let open = s.find('[')?;
    let close = s.find(']')?;
    let name = s[..open].trim().to_string();
    let size: u32 = s[open + 1..close].trim().parse().ok()?;
    if name.is_empty() {
        return None;
    }
    Some((name, size))
}

/// Resolves `q\[3\]` to one flat index, or a bare register name `q` to all of
/// its indices (register broadcast).
fn resolve_operands(
    s: &str,
    regs: &[(String, u32)],
    reg_offset: &HashMap<String, u32>,
    lineno: usize,
) -> Result<Vec<Qubit>, QasmError> {
    if let Some(open) = s.find('[') {
        let close = s
            .find(']')
            .ok_or_else(|| QasmError::new(lineno, format!("missing ']' in '{s}'")))?;
        let name = s[..open].trim();
        let idx: u32 = s[open + 1..close]
            .trim()
            .parse()
            .map_err(|_| QasmError::new(lineno, format!("bad index in '{s}'")))?;
        let &offset = reg_offset
            .get(name)
            .ok_or_else(|| QasmError::new(lineno, format!("unknown register '{name}'")))?;
        let size = regs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, sz)| *sz)
            .unwrap_or(0);
        if idx >= size {
            return Err(QasmError::new(
                lineno,
                format!("index {idx} out of range for register '{name}[{size}]'"),
            ));
        }
        Ok(vec![offset + idx])
    } else {
        let name = s.trim();
        let &offset = reg_offset
            .get(name)
            .ok_or_else(|| QasmError::new(lineno, format!("unknown register '{name}'")))?;
        let size = regs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, sz)| *sz)
            .unwrap_or(0);
        Ok((offset..offset + size).collect())
    }
}

/// Parses an angle expression: decimal radians, or `±a*pi/b` with optional
/// parts (`pi`, `-pi/2`, `3*pi/4`, `2*pi`).
fn parse_angle(s: &str) -> Result<Angle, String> {
    let s = s.trim().replace(' ', "");
    if s.is_empty() {
        return Err("empty angle expression".into());
    }
    if let Ok(v) = s.parse::<f64>() {
        return Ok(Angle::from_radians(v));
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.as_str()),
    };
    let (num_part, den): (&str, f64) = match body.find('/') {
        Some(i) => {
            let den: f64 = body[i + 1..]
                .parse()
                .map_err(|_| format!("bad denominator in '{s}'"))?;
            (&body[..i], den)
        }
        None => (body, 1.0),
    };
    let coeff: f64 = match num_part.find("pi") {
        Some(0) => 1.0,
        Some(i) => {
            let lead = num_part[..i].trim_end_matches('*');
            lead.parse()
                .map_err(|_| format!("bad coefficient in '{s}'"))?
        }
        None => return Err(format!("cannot parse angle '{s}'")),
    };
    let turns = if neg { -coeff / den } else { coeff / den };
    Ok(Angle::new(turns))
}

/// Serialises a circuit back to OpenQASM 2 text.
///
/// Measurements are written with a matching `creg`. Output parses back to
/// an equivalent circuit via [`parse_qasm`].
pub fn write_qasm(circuit: &Circuit) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    let n_measure = circuit.counts().measure;
    if n_measure > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_qubits());
    }
    for g in circuit.iter() {
        match g {
            Gate::Rz(q, a) => {
                let _ = writeln!(out, "rz({}) q[{}];", a.radians(), q);
            }
            Gate::Cnot { control, target } => {
                let _ = writeln!(out, "cx q[{control}], q[{target}];");
            }
            Gate::Cz(a, b) => {
                let _ = writeln!(out, "cz q[{a}], q[{b}];");
            }
            Gate::Swap(a, b) => {
                let _ = writeln!(out, "swap q[{a}], q[{b}];");
            }
            Gate::Measure(q) => {
                let _ = writeln!(out, "measure q[{q}] -> c[{q}];");
            }
            g => {
                let q = g.qubits().next().expect("single-qubit gate");
                let _ = writeln!(out, "{} q[{}];", g.name(), q);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_program() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[3];
            creg c[3];
            h q[0];
            cx q[0], q[1];
            rz(pi/4) q[2];
            t q[1]; tdg q[2];
            measure q[0] -> c[0];
        "#;
        let c = parse_qasm(src).expect("parses");
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.counts().h, 1);
        assert_eq!(c.counts().cnot, 1);
        assert_eq!(c.counts().rz, 1);
        assert_eq!(c.counts().t, 1);
        assert_eq!(c.counts().tdg, 1);
        assert_eq!(c.counts().measure, 1);
    }

    #[test]
    fn rz_pi_fraction_is_exact() {
        let c = parse_qasm("qreg q[1]; rz(pi/4) q[0];").unwrap();
        match c.gates()[0] {
            Gate::Rz(_, a) => assert_eq!(a, Angle::new(0.25)),
            _ => panic!("expected rz"),
        }
        let c = parse_qasm("qreg q[1]; rz(-3*pi/2) q[0];").unwrap();
        match c.gates()[0] {
            Gate::Rz(_, a) => assert_eq!(a, Angle::new(-1.5)),
            _ => panic!("expected rz"),
        }
    }

    #[test]
    fn rz_decimal_radians() {
        let c = parse_qasm("qreg q[1]; rz(1.5707963267948966) q[0];").unwrap();
        match c.gates()[0] {
            Gate::Rz(_, a) => assert!((a.turns_of_pi() - 0.5).abs() < 1e-12),
            _ => panic!("expected rz"),
        }
    }

    #[test]
    fn register_broadcast() {
        let c = parse_qasm("qreg q[4]; h q;").unwrap();
        assert_eq!(c.counts().h, 4);
    }

    #[test]
    fn multiple_qregs_flatten() {
        let c = parse_qasm("qreg a[2]; qreg b[3]; cx a[1], b[0];").unwrap();
        assert_eq!(c.num_qubits(), 5);
        match c.gates()[0] {
            Gate::Cnot { control, target } => {
                assert_eq!(control, 1);
                assert_eq!(target, 2);
            }
            _ => panic!("expected cx"),
        }
    }

    #[test]
    fn comments_and_barriers_ignored() {
        let c = parse_qasm("qreg q[1]; // comment\nbarrier q; h q[0]; // trailing").unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_qasm("qreg q[1];\nfoo q[0];").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("unsupported gate"));
    }

    #[test]
    fn out_of_range_index_rejected() {
        let err = parse_qasm("qreg q[2]; h q[5];").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn unknown_register_rejected() {
        let err = parse_qasm("qreg q[2]; h r[0];").unwrap_err();
        assert!(err.to_string().contains("unknown register"));
    }

    #[test]
    fn roundtrip_through_writer() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cnot(0, 1)
            .rz_pi(2, 0.25)
            .sdg(1)
            .sx(2)
            .swap(0, 2)
            .cz(1, 2)
            .measure(0);
        let text = write_qasm(&c);
        let back = parse_qasm(&text).expect("writer output parses");
        assert_eq!(back.num_qubits(), c.num_qubits());
        assert_eq!(back.counts(), c.counts());
    }

    #[test]
    fn duplicate_qreg_rejected() {
        let err = parse_qasm("qreg q[1]; qreg q[2];").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }
}
