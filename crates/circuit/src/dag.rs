//! Dependency DAG over circuit gates.
//!
//! The greedy router consumes gates from the *front layer* (gates whose
//! predecessors have all been scheduled) and uses successor information for
//! the gate-dependent look-ahead moves of paper §V.A ("the data qubits
//! consult the circuit's DAG to determine the subsequent move operations").

use crate::circuit::Circuit;
use crate::gate::{Gate, Qubit};
use serde::{Deserialize, Serialize};

/// Identifier of a node (gate) in the DAG; equals the gate's index in the
/// originating circuit.
pub type NodeId = usize;

/// One node of the dependency DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagNode {
    /// The gate at this node.
    pub gate: Gate,
    /// Direct predecessors (gates that must run first).
    pub preds: Vec<NodeId>,
    /// Direct successors.
    pub succs: Vec<NodeId>,
}

/// A circuit's gate-dependency DAG.
///
/// Edges connect consecutive gates acting on a common qubit. Node ids equal
/// gate indices, so topological order by increasing id is always valid.
///
/// # Example
///
/// ```
/// use ftqc_circuit::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1).h(1);
/// let dag = c.dag();
/// assert_eq!(dag.len(), 3);
/// assert_eq!(dag.node(1).preds, vec![0]);
/// assert_eq!(dag.node(1).succs, vec![2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagCircuit {
    nodes: Vec<DagNode>,
    num_qubits: u32,
}

impl DagCircuit {
    /// Builds the DAG from a circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut nodes: Vec<DagNode> = Vec::with_capacity(circuit.len());
        let mut last_on: Vec<Option<NodeId>> = vec![None; circuit.num_qubits() as usize];
        for (id, gate) in circuit.iter().enumerate() {
            let mut preds = Vec::new();
            for q in gate.qubits() {
                if let Some(p) = last_on[q as usize] {
                    if !preds.contains(&p) {
                        preds.push(p);
                    }
                }
                last_on[q as usize] = Some(id);
            }
            for &p in &preds {
                nodes[p].succs.push(id);
            }
            nodes.push(DagNode {
                gate: *gate,
                preds,
                succs: Vec::new(),
            });
        }
        Self {
            nodes,
            num_qubits: circuit.num_qubits(),
        }
    }

    /// Number of nodes (gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Register size of the originating circuit.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Borrowed access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &DagNode {
        &self.nodes[id]
    }

    /// All nodes in id (= program) order.
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// Nodes with no predecessors (the initial front layer).
    pub fn front_layer(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.preds.is_empty())
            .map(|(i, _)| i)
    }

    /// ASAP layering: `layers()[k]` holds the ids of gates whose longest
    /// dependency chain from an input has length `k`.
    pub fn layers(&self) -> Vec<Vec<NodeId>> {
        let mut level = vec![0usize; self.nodes.len()];
        let mut max_level = 0;
        for (id, node) in self.nodes.iter().enumerate() {
            let lvl = node.preds.iter().map(|&p| level[p] + 1).max().unwrap_or(0);
            level[id] = lvl;
            max_level = max_level.max(lvl);
        }
        let mut layers = vec![
            Vec::new();
            if self.nodes.is_empty() {
                0
            } else {
                max_level + 1
            }
        ];
        for (id, &lvl) in level.iter().enumerate() {
            layers[lvl].push(id);
        }
        layers
    }

    /// Length of the weighted critical path, where each gate contributes
    /// `cost(gate)`.
    ///
    /// Used by the DASCOT baseline model, whose execution time with unlimited
    /// magic states is depth-limited.
    pub fn critical_path(&self, mut cost: impl FnMut(&Gate) -> u64) -> u64 {
        let mut finish = vec![0u64; self.nodes.len()];
        let mut best = 0;
        for (id, node) in self.nodes.iter().enumerate() {
            let start = node.preds.iter().map(|&p| finish[p]).max().unwrap_or(0);
            finish[id] = start + cost(&node.gate);
            best = best.max(finish[id]);
        }
        best
    }

    /// For each qubit, the id of the *next* gate at-or-after `from` that acts
    /// on it, scanning successor chains. Returns `None` when the qubit is
    /// idle for the rest of the program.
    ///
    /// This is the query behind gate-dependent moves: after finishing a gate,
    /// the router looks up where each operand is needed next.
    pub fn next_gate_on(&self, qubit: Qubit, after: NodeId) -> Option<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .skip(after + 1)
            .find(|(_, n)| n.gate.qubits().any(|q| q == qubit))
            .map(|(i, _)| i)
    }

    /// Creates a scheduling tracker over this DAG.
    pub fn tracker(&self) -> FrontTracker<'_> {
        FrontTracker::new(self)
    }
}

/// Incremental front-layer tracker used by the greedy scheduler.
///
/// Call [`FrontTracker::complete`] as gates are scheduled; [`FrontTracker::ready`]
/// always holds the current front layer in ascending id order (deterministic
/// tie-breaking, which keeps compilation reproducible).
#[derive(Debug, Clone)]
pub struct FrontTracker<'a> {
    dag: &'a DagCircuit,
    indeg: Vec<usize>,
    ready: Vec<NodeId>,
    remaining: usize,
}

impl<'a> FrontTracker<'a> {
    /// Creates a tracker with the initial front layer ready.
    pub fn new(dag: &'a DagCircuit) -> Self {
        let indeg: Vec<usize> = dag.nodes().iter().map(|n| n.preds.len()).collect();
        let mut ready: Vec<NodeId> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        ready.sort_unstable();
        Self {
            dag,
            indeg,
            ready,
            remaining: dag.len(),
        }
    }

    /// Gates currently schedulable, ascending by id.
    pub fn ready(&self) -> &[NodeId] {
        &self.ready
    }

    /// Number of gates not yet completed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Whether every gate has been completed.
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Marks `id` complete, releasing successors whose predecessors are all
    /// complete.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not currently in the ready set (completing a gate
    /// with outstanding dependencies would corrupt the schedule).
    pub fn complete(&mut self, id: NodeId) {
        let pos = self
            .ready
            .iter()
            .position(|&r| r == id)
            .unwrap_or_else(|| panic!("gate {id} completed while not ready"));
        self.ready.remove(pos);
        self.remaining -= 1;
        let mut newly = Vec::new();
        for &s in &self.dag.node(id).succs {
            self.indeg[s] -= 1;
            if self.indeg[s] == 0 {
                newly.push(s);
            }
        }
        for s in newly {
            let ins = self.ready.partition_point(|&r| r < s);
            self.ready.insert(ins, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn chain3() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).h(1);
        c
    }

    #[test]
    fn edges_follow_qubit_order() {
        let dag = chain3().dag();
        assert_eq!(dag.node(0).preds, Vec::<NodeId>::new());
        assert_eq!(dag.node(0).succs, vec![1]);
        assert_eq!(dag.node(1).preds, vec![0]);
        assert_eq!(dag.node(2).preds, vec![1]);
    }

    #[test]
    fn cnot_preds_deduplicated() {
        // Both operands of the second CNOT last appeared in the first CNOT:
        // exactly one dependency edge should exist.
        let mut c = Circuit::new(2);
        c.cnot(0, 1).cnot(1, 0);
        let dag = c.dag();
        assert_eq!(dag.node(1).preds, vec![0]);
        assert_eq!(dag.node(0).succs, vec![1]);
    }

    #[test]
    fn front_layer_initial() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).cnot(0, 1).h(2);
        let dag = c.dag();
        let front: Vec<_> = dag.front_layer().collect();
        assert_eq!(front, vec![0, 1, 3]);
    }

    #[test]
    fn layers_asap() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).cnot(0, 1).h(2);
        let layers = c.dag().layers();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0], vec![0, 1, 3]);
        assert_eq!(layers[1], vec![2]);
    }

    #[test]
    fn critical_path_weighted() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).h(1);
        let cp = c.dag().critical_path(|g| match g {
            Gate::H(_) => 3,
            Gate::Cnot { .. } => 2,
            _ => 1,
        });
        assert_eq!(cp, 3 + 2 + 3);
    }

    #[test]
    fn critical_path_parallel_branches() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        assert_eq!(c.dag().critical_path(|_| 5), 5);
    }

    #[test]
    fn next_gate_on_scans_forward() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).h(1).h(0);
        let dag = c.dag();
        assert_eq!(dag.next_gate_on(0, 0), Some(1));
        assert_eq!(dag.next_gate_on(0, 1), Some(3));
        assert_eq!(dag.next_gate_on(1, 2), None);
    }

    #[test]
    fn tracker_full_run() {
        let dag = chain3().dag();
        let mut t = dag.tracker();
        assert_eq!(t.ready(), &[0]);
        t.complete(0);
        assert_eq!(t.ready(), &[1]);
        t.complete(1);
        assert_eq!(t.ready(), &[2]);
        t.complete(2);
        assert!(t.is_done());
    }

    #[test]
    fn tracker_keeps_ready_sorted() {
        let mut c = Circuit::new(4);
        c.cnot(0, 1).h(2).h(3).h(0);
        let dag = c.dag();
        let mut t = dag.tracker();
        assert_eq!(t.ready(), &[0, 1, 2]);
        t.complete(0);
        // gate 3 (h q0) becomes ready and must be inserted in order.
        assert_eq!(t.ready(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn tracker_rejects_unready_completion() {
        let dag = chain3().dag();
        let mut t = dag.tracker();
        t.complete(2);
    }

    #[test]
    fn empty_dag() {
        let c = Circuit::new(1);
        let dag = c.dag();
        assert!(dag.is_empty());
        assert!(dag.layers().is_empty());
        assert!(dag.tracker().is_done());
    }
}
