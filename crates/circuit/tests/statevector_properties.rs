//! Property tests cross-validating the three semantic oracles: dense
//! state-vector simulation, the stabilizer simulator, and the Clifford
//! tableau.
//!
//! The oracles are implemented independently (amplitudes vs binary
//! symplectic rows), so their agreement on random circuits is strong
//! evidence each is correct.

use ftqc_circuit::{circuits_equivalent, Circuit, Gate, StabilizerState, StateVector};
use proptest::prelude::*;

/// A random Clifford gate on `n` qubits.
fn clifford_gate(n: u32) -> impl Strategy<Value = Gate> {
    (0..n, 0..n, 0u8..8).prop_map(move |(a, b, kind)| match kind {
        0 => Gate::H(a),
        1 => Gate::S(a),
        2 => Gate::Sdg(a),
        3 => Gate::Sx(a),
        4 => Gate::X(a),
        5 => Gate::Z(a),
        6 => Gate::Y(a),
        _ => {
            if a == b {
                Gate::H(a)
            } else {
                Gate::Cnot {
                    control: a,
                    target: b,
                }
            }
        }
    })
}

fn clifford_circuit(n: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(clifford_gate(n), 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        c.append(gates);
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unitary evolution preserves the norm.
    #[test]
    fn norm_preserved(c in clifford_circuit(4, 30)) {
        let s = StateVector::from_circuit(&c);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// A circuit followed by its inverse returns to |0…0⟩.
    #[test]
    fn inverse_returns_to_start(c in clifford_circuit(4, 20)) {
        let mut s = StateVector::new(4);
        s.apply_all(c.iter());
        let inverse: Vec<Gate> = c.iter().rev().map(|g| g.inverse()).collect();
        s.apply_all(inverse.iter());
        prop_assert!((s.prob_of_basis(0) - 1.0).abs() < 1e-9);
    }

    /// Deterministic stabilizer measurements match state-vector
    /// probabilities (0 or 1), qubit by qubit.
    #[test]
    fn stabilizer_and_statevector_agree_on_deterministic_outcomes(
        c in clifford_circuit(4, 25),
    ) {
        let sv = StateVector::from_circuit(&c);
        let mut st = StabilizerState::new(4);
        st.apply_circuit(c.iter());
        for q in 0..4u32 {
            let p1 = sv.prob_one(q);
            // Probe a *copy* so earlier measurements don't disturb later
            // qubits' statistics.
            let mut probe = st.clone();
            let outcome = probe.measure_z(q, false);
            if outcome.is_deterministic() {
                let expect = if outcome.bit() { 1.0 } else { 0.0 };
                prop_assert!(
                    (p1 - expect).abs() < 1e-9,
                    "qubit {q}: stabilizer says {expect}, statevector says {p1}"
                );
            } else {
                prop_assert!(
                    (p1 - 0.5).abs() < 1e-9,
                    "qubit {q}: stabilizer says random, statevector says {p1}"
                );
            }
        }
    }

    /// Commuting adjacent gates on disjoint qubits leaves the state
    /// unchanged — the algebraic fact the semantic verifier's trace check
    /// rests on.
    #[test]
    fn disjoint_adjacent_gates_commute(
        c in clifford_circuit(5, 20),
        swap_at in 0usize..18,
    ) {
        let gates: Vec<Gate> = c.iter().copied().collect();
        if swap_at + 1 >= gates.len() {
            return Ok(());
        }
        let a = gates[swap_at];
        let b = gates[swap_at + 1];
        let disjoint = a.qubits().all(|q| b.qubits().all(|p| p != q));
        if !disjoint {
            return Ok(());
        }
        let mut swapped = gates.clone();
        swapped.swap(swap_at, swap_at + 1);
        let mut c2 = Circuit::new(5);
        c2.append(swapped);
        prop_assert!(circuits_equivalent(&c, &c2, 1e-9));
    }

    /// Appending one more non-identity-like gate at the end changes the
    /// unitary (detected by the probe set) for T gates, which no Clifford
    /// can silently absorb.
    #[test]
    fn appended_t_gate_detected(c in clifford_circuit(3, 15), q in 0u32..3) {
        let mut c2 = Circuit::new(3);
        c2.append(c.iter().copied());
        c2.t(q);
        prop_assert!(!circuits_equivalent(&c, &c2, 1e-9));
    }
}

#[test]
fn ghz_agreement_between_oracles() {
    let mut c = Circuit::new(6);
    c.h(0);
    for q in 0..5 {
        c.cnot(q, q + 1);
    }
    let sv = StateVector::from_circuit(&c);
    let mut st = StabilizerState::new(6);
    st.apply_circuit(c.iter());
    // Each qubit individually is maximally mixed: P(1) = 1/2 everywhere.
    for q in 0..6u32 {
        assert!((sv.prob_one(q) - 0.5).abs() < 1e-12);
        assert!(!st.clone().measure_z(q, false).is_deterministic());
    }
    // Forcing the first measurement to 1 collapses the rest to 1.
    let mut st1 = st.clone();
    st1.measure_z(0, true);
    for q in 1..6u32 {
        let o = st1.clone().measure_z(q, false);
        assert!(o.is_deterministic());
        assert!(o.bit());
    }
}
