//! Cross-validation of the PPR transpiler against the stabilizer
//! simulator.
//!
//! For a Clifford circuit `C` followed by a Z-measurement of qubit `q`,
//! Litinski's transformation replaces the measurement by the Pauli-product
//! observable `M = C† Z_q C`. The measurement on `C|0…0⟩` is deterministic
//! with outcome `b` exactly when `(-1)^b M` stabilises the *initial* state
//! `|0…0⟩`. The transpiler (built on `CliffordTableau::apply_pre`) and the
//! simulator (built on row conjugation) implement these two sides
//! independently, so agreement is a strong end-to-end check of the whole
//! Pauli algebra.

use ftqc_circuit::pauli::Phase;
use ftqc_circuit::{Circuit, PprProgram, StabilizerState};

/// Deterministic pseudo-random Clifford circuit (no measurement).
fn random_clifford(n: u32, gates: usize, mut state: u64) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let q = ((state >> 33) % n as u64) as u32;
        let r = ((state >> 20) % n as u64) as u32;
        match (state >> 10) % 7 {
            0 => c.h(q),
            1 => c.s(q),
            2 => c.sdg(q),
            3 => c.sx(q),
            4 if q != r => c.cnot(q, r),
            5 if q != r => c.cz(q, r),
            _ => c.z(q),
        };
    }
    c
}

#[test]
fn measurement_observables_agree_with_simulation() {
    for seed in 0..20u64 {
        let n = 4;
        let clifford = random_clifford(n, 40, seed.wrapping_mul(0x9e3779b97f4a7c15) | 1);

        // Side A: simulate and measure every qubit's determinism status.
        let mut sim = StabilizerState::new(n as usize);
        sim.apply_circuit(clifford.iter());

        // Side B: transpile `clifford ; measure q` to get the observable.
        for q in 0..n {
            let mut with_measure = clifford.clone();
            with_measure.measure(q);
            let ppr = PprProgram::from_circuit(&with_measure);
            assert_eq!(ppr.t_count(), 0, "Clifford circuit emits no rotations");
            let observable = &ppr.measurements()[0];

            let mut probe = sim.clone();
            match probe.measure_z(q, false) {
                outcome if outcome.is_deterministic() => {
                    let b = outcome.bit();
                    // Measuring Z_q after C with outcome b means
                    // (-1)^b · (C† Z_q C) stabilises |0…0⟩; the observable
                    // already carries the sign of C† Z_q C.
                    let mut signed = observable.clone();
                    if b {
                        signed.set_phase(signed.phase().negate());
                    }
                    let initial = StabilizerState::new(n as usize);
                    assert!(
                        initial.is_stabilized_by(&signed),
                        "seed {seed}, qubit {q}: deterministic outcome {b} but \
                         {signed} does not stabilise |0..0>",
                    );
                }
                _ => {
                    // Random outcome: neither +M nor -M stabilises |0..0>.
                    let initial = StabilizerState::new(n as usize);
                    let mut plus = observable.clone();
                    plus.set_phase(Phase::PLUS);
                    let mut minus = observable.clone();
                    minus.set_phase(Phase::MINUS);
                    assert!(
                        !initial.is_stabilized_by(&plus) && !initial.is_stabilized_by(&minus),
                        "seed {seed}, qubit {q}: random outcome but observable pinned",
                    );
                }
            }
        }
    }
}

#[test]
fn rotation_axes_commute_consistently() {
    // The rotations emitted for a layer of disjoint ZZ Trotter terms
    // commute pairwise (disjoint supports in the original circuit conjugate
    // to commuting axes).
    let mut c = Circuit::new(6);
    c.h(0).cnot(0, 1).sx(2).cz(2, 3).s(4).cnot(4, 5);
    for (a, b) in [(0u32, 1u32), (2, 3), (4, 5)] {
        c.cnot(a, b).rz_pi(b, 0.07).cnot(a, b);
    }
    let ppr = PprProgram::from_circuit(&c);
    assert_eq!(ppr.t_count(), 3);
    for i in 0..3 {
        for j in i + 1..3 {
            assert!(
                ppr.rotations()[i]
                    .pauli
                    .commutes_with(&ppr.rotations()[j].pauli),
                "rotations {i} and {j} must commute"
            );
        }
    }
}

#[test]
fn clifford_absorption_is_exhaustive() {
    // Any pure-Clifford circuit transpiles to zero rotations, whatever mix
    // of gates it contains.
    for seed in 0..10u64 {
        let c = random_clifford(5, 60, seed * 77 + 1);
        let ppr = PprProgram::from_circuit(&c);
        assert_eq!(ppr.t_count(), 0);
        assert!(ppr.rotations().is_empty());
    }
}
