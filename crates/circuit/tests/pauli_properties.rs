//! Property-based tests of the Pauli algebra and Clifford tableau — the
//! foundations everything in the workspace rests on.

use ftqc_circuit::pauli::Phase;
use ftqc_circuit::{CliffordTableau, Gate, Pauli, PauliString};
use proptest::prelude::*;

const N: usize = 5;

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z),
    ]
}

fn arb_string() -> impl Strategy<Value = PauliString> {
    (proptest::collection::vec(arb_pauli(), N), 0u8..4).prop_map(|(ps, phase)| {
        let mut s = PauliString::identity(N);
        for (i, p) in ps.into_iter().enumerate() {
            s.set(i as u32, p);
        }
        s.set_phase(Phase::from_i_exponent(phase));
        s
    })
}

fn arb_clifford_gate() -> impl Strategy<Value = Gate> {
    let q = 0u32..N as u32;
    let pair = (0u32..N as u32, 0u32..N as u32).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::S),
        q.clone().prop_map(Gate::Sdg),
        q.clone().prop_map(Gate::Sx),
        q.clone().prop_map(Gate::Sxdg),
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::Y),
        q.prop_map(Gate::Z),
        pair.clone().prop_map(|(a, b)| Gate::Cnot {
            control: a,
            target: b
        }),
        pair.clone().prop_map(|(a, b)| Gate::Cz(a, b)),
        pair.prop_map(|(a, b)| Gate::Swap(a, b)),
    ]
}

proptest! {
    /// Multiplication is associative (phases included).
    #[test]
    fn mul_is_associative(a in arb_string(), b in arb_string(), c in arb_string()) {
        let mut ab = a.clone();
        ab.mul_assign(&b);
        let mut ab_c = ab;
        ab_c.mul_assign(&c);

        let mut bc = b.clone();
        bc.mul_assign(&c);
        let mut a_bc = a.clone();
        a_bc.mul_assign(&bc);

        prop_assert_eq!(ab_c, a_bc);
    }

    /// P·P = ± identity-with-phase: squaring clears the bits.
    #[test]
    fn squaring_clears_support(a in arb_string()) {
        let mut sq = a.clone();
        sq.mul_assign(&a);
        prop_assert!(sq.is_identity());
        // A Hermitian Pauli squares to +1; i-phased strings square to -1.
        if a.phase().is_real() {
            prop_assert_eq!(sq.phase(), Phase::PLUS);
        } else {
            prop_assert_eq!(sq.phase(), Phase::MINUS);
        }
    }

    /// Commutation is symmetric and consistent with products:
    /// AB = ±BA with the sign given by commutes_with.
    #[test]
    fn commutation_matches_product(a in arb_string(), b in arb_string()) {
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
        let mut ab = a.clone();
        ab.mul_assign(&b);
        let mut ba = b.clone();
        ba.mul_assign(&a);
        if a.commutes_with(&b) {
            prop_assert_eq!(ab, ba);
        } else {
            let mut neg = ba;
            neg.set_phase(neg.phase().negate());
            prop_assert_eq!(ab, neg);
        }
    }

    /// Conjugation by a Clifford gate preserves commutation relations and
    /// support weight bounds, and is inverted by the inverse gate.
    #[test]
    fn conjugation_roundtrip(a in arb_string(), g in arb_clifford_gate()) {
        let mut c = a.clone();
        c.conjugate_by(&g);
        c.conjugate_by(&g.inverse());
        prop_assert_eq!(c, a);
    }

    /// Conjugation is a homomorphism: (AB)^g = A^g · B^g.
    #[test]
    fn conjugation_is_homomorphism(
        a in arb_string(),
        b in arb_string(),
        g in arb_clifford_gate(),
    ) {
        let mut ab = a.clone();
        ab.mul_assign(&b);
        ab.conjugate_by(&g);

        let mut ag = a.clone();
        ag.conjugate_by(&g);
        let mut bg = b.clone();
        bg.conjugate_by(&g);
        ag.mul_assign(&bg);

        prop_assert_eq!(ab, ag);
    }

    /// Tableaux stay symplectic under arbitrary gate sequences, through
    /// both composition directions.
    #[test]
    fn tableau_invariants_hold(gates in proptest::collection::vec(arb_clifford_gate(), 0..25)) {
        let mut post = CliffordTableau::identity(N);
        let mut pre = CliffordTableau::identity(N);
        for g in &gates {
            post.apply(g);
            pre.apply_pre(g);
        }
        prop_assert!(post.check_invariants().is_ok());
        prop_assert!(pre.check_invariants().is_ok());
    }

    /// apply and apply_pre are mutually inverse: applying a circuit with
    /// `apply` and its reversed inverse with `apply_pre` — composed as
    /// images — returns every generator unchanged.
    #[test]
    fn apply_pre_inverts_apply(gates in proptest::collection::vec(arb_clifford_gate(), 0..15)) {
        let mut t = CliffordTableau::identity(N);
        for g in &gates {
            t.apply(g);
        }
        // Φ(P) = C P C†. Feeding Φ's rows through the pre-tableau of the
        // same circuit (Ψ(P) = C† P C) must give the identity map.
        let mut pre = CliffordTableau::identity(N);
        for g in &gates {
            pre.apply_pre(g);
        }
        for q in 0..N as u32 {
            let img = pre.image(t.image_z(q));
            prop_assert_eq!(img, PauliString::single(N, q, Pauli::Z));
            let img = pre.image(t.image_x(q));
            prop_assert_eq!(img, PauliString::single(N, q, Pauli::X));
        }
    }
}
