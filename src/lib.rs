//! `ftqc` — space-time optimisations for early fault-tolerant quantum
//! computation.
//!
//! Umbrella crate re-exporting the workspace: a distillation-adaptive
//! surface-code compiler (Sharma & Murali, CGO 2026) together with the
//! substrates it is built on and the baselines it is evaluated against.
//!
//! * [`circuit`] — Clifford+T IR, dependency DAG, Pauli/tableau algebra,
//!   PPR transpilation, OpenQASM subset I/O.
//! * [`arch`] — logical-qubit grid, routing-path-parameterised layouts,
//!   lattice-surgery instruction set, timing model, distillation factories.
//! * [`route`] — weighted Dijkstra pathfinding, space search, and
//!   gate-dependent look-ahead moves.
//! * [`sim`] — per-cell resource timeline (discrete-event scheduling core).
//! * [`compiler`] — the mapping → routing → scheduling pipeline and its
//!   metrics (the paper's primary contribution).
//! * [`baselines`] — Litinski block layouts, LSQCA Line-SAM, and DASCOT
//!   comparison models.
//! * [`benchmarks`] — Table I workload generators (condensed-matter Trotter
//!   circuits, GHZ, adder, multiplier).
//! * [`service`] — the parallel batch-compilation service: JSON-lines
//!   compile jobs, a deterministic worker pool, and a content-addressed
//!   compile cache shared by `compiler::explore_parallel`, the sweep
//!   binaries and the `ftqc batch` / `ftqc sweep --parallel` CLI.
//! * [`server`] — the HTTP compile server over that service: JSON
//!   endpoints for single compiles, JSONL batches, and design-space
//!   sweeps, one process-wide compile cache shared by all clients,
//!   Prometheus metrics, graceful shutdown, and a blocking client API
//!   (`ftqc serve` / `ftqc client`).
//! * [`editor`] — interactive edit sessions: gate-level circuit edits
//!   batched over the wire, recompiled differentially (suffix re-lower,
//!   checkpointed routing resume, spliced re-timing) with verification
//!   on every result, served as the stateful `/v1/session*` endpoints
//!   (`ftqc edit`).
//! * [`reactor`] — the event-driven serving core behind `ftqc serve
//!   --reactor`: a dependency-free epoll reactor with sharded event
//!   loops, incremental HTTP framing, a bounded per-client-fair
//!   admission queue, computed `Retry-After` backpressure, and graceful
//!   drain — ~10x the threaded transport's concurrent-connection
//!   capacity.
//! * [`fleet`] — the distributed compile fleet over that server: worker
//!   processes that return results with compact verification witnesses,
//!   a coordinator that dispatches batches and re-verifies every witness
//!   (quarantining workers that fail), and a consistent-hash sharded
//!   peer cache (`ftqc serve --worker` / `ftqc serve --fleet`).
//! * [`telemetry`] — request-scoped tracing: trace ids, span trees,
//!   log₂ latency histograms with percentiles, and the bounded flight
//!   recorder behind the server's `/v1/traces` endpoints.
//!
//! # Quickstart
//!
//! ```
//! use ftqc::benchmarks::ising_2d;
//! use ftqc::compiler::{Compiler, CompilerOptions};
//!
//! let circuit = ising_2d(2); // 2x2 Ising model, single Trotter step
//! let options = CompilerOptions::default().routing_paths(4).factories(1);
//! let compiled = Compiler::new(options).compile(&circuit)?;
//! assert!(compiled.metrics().execution_time >= compiled.metrics().lower_bound);
//! # Ok::<(), ftqc::compiler::CompileError>(())
//! ```

pub use ftqc_arch as arch;
pub use ftqc_baselines as baselines;
pub use ftqc_benchmarks as benchmarks;
pub use ftqc_circuit as circuit;
pub use ftqc_compiler as compiler;
pub use ftqc_editor as editor;
pub use ftqc_fleet as fleet;
pub use ftqc_reactor as reactor;
pub use ftqc_route as route;
pub use ftqc_server as server;
pub use ftqc_service as service;
pub use ftqc_sim as sim;
pub use ftqc_telemetry as telemetry;
