//! Render the routing-path-parameterised layout family of paper Fig 3:
//! a 4x4 data block with 2, 4, 6 and 10 routing paths, plus the factory
//! ports docked on the boundary.
//!
//! Run with: `cargo run --example layout_gallery`

use ftqc::arch::{render_with, CellKind, FactoryBank, Layout, Ticks};

fn main() {
    for r in [2u32, 4, 6, 10] {
        let layout = Layout::with_routing_paths(16, r);
        let bank = FactoryBank::dock(&layout, 2, Ticks::from_d(11.0));
        println!(
            "r = {r}: {} patches ({} data, {} bus), data:ancilla = {:.2}",
            layout.total_patches(),
            layout.data_cells().len(),
            layout.bus_patches(),
            layout.data_to_ancilla_ratio()
        );
        let art = render_with(&layout, |c| {
            if bank.ports().contains(&c) {
                'P'
            } else {
                match layout.grid().kind(c) {
                    CellKind::Data => 'D',
                    CellKind::Bus => '.',
                }
            }
        });
        println!("{art}");
    }
    println!("D = data qubit, . = bus/ancilla, P = magic-state factory port");
}
