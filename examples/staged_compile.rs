//! Staged compilation walkthrough: the typed `CompileSession` pipeline,
//! stage fingerprints, trace hooks, stage-level caching, and the
//! resume-from-`Mapped` latency-model sweep that re-runs scheduling alone.
//!
//! Run with: `cargo run --release --example staged_compile`

use ftqc::arch::{Ticks, TimingModel};
use ftqc::benchmarks::ising_2d;
use ftqc::compiler::{CompileSession, CompilerOptions, StageCache, StageTrace};
use ftqc::service::fingerprint;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ising_2d(4);
    println!(
        "circuit: {} ({} qubits, {} gates)\n",
        circuit.name(),
        circuit.num_qubits(),
        circuit.len()
    );

    // 1. The typed pipeline, stage by stage. Each artifact carries a
    //    stable fingerprint: the upstream artifact's digest combined with
    //    the option subset that stage actually reads.
    let options = CompilerOptions::default().routing_paths(4);
    let session = CompileSession::new(options.clone());
    let prepared = session.prepare(&circuit)?;
    println!("prepared : {}", fingerprint::to_hex(prepared.fingerprint()));
    let lowered = prepared.lower();
    println!("lowered  : {}", fingerprint::to_hex(lowered.fingerprint()));
    let mapped = lowered.map()?;
    println!(
        "mapped   : {} ({} routed ops, {} magic states)",
        fingerprint::to_hex(mapped.fingerprint()),
        mapped.ops().len(),
        mapped.n_magic_states()
    );
    let program = mapped.clone().schedule()?;
    println!("scheduled: {}\n", program.metrics().execution_time);

    // 2. Resume-from-Mapped: sweep re-timing models over the routed ops.
    //    Routing (the dominant cost) runs zero times in this loop.
    println!("latency-model sweep over the cached routed program:");
    for cnot_d in [1.0, 2.0, 4.0] {
        let retimed = mapped.reschedule(&options.clone().schedule_timing(TimingModel {
            cnot: Ticks::from_d(cnot_d),
            ..TimingModel::paper()
        }))?;
        println!(
            "  cnot={cnot_d}d -> execution time {}",
            retimed.metrics().execution_time
        );
    }

    // 3. The same reuse, hands-free, through a shared StageCache — how the
    //    batch service and the HTTP server run every compile. The second
    //    pass hits all four stage tiers.
    let stages = StageCache::new(64);
    let trace = StageTrace::new();
    let cached_session = CompileSession::new(options.clone())
        .with_cache(stages.clone())
        .with_hook(trace.clone());
    let cold = Instant::now();
    cached_session.compile(&circuit)?;
    let cold = cold.elapsed();
    let warm = Instant::now();
    cached_session.compile(&circuit)?;
    let warm = warm.elapsed();
    println!("\ncold compile {cold:?}, warm compile {warm:?}");
    println!("\nper-stage trace (what `ftqc compile --explain` prints):");
    for event in trace.events() {
        println!(
            "  {:<9} {} {:>9} {:>7} µs",
            event.stage.name(),
            fingerprint::to_hex(event.fingerprint),
            if event.cached { "hit" } else { "computed" },
            event.micros
        );
    }
    let stats = stages.stats();
    println!(
        "\nstage cache: prepare {}/{}, lower {}/{}, map {}/{}, schedule {}/{}",
        stats.prepare.hits,
        stats.prepare.lookups(),
        stats.lower.hits,
        stats.lower.lookups(),
        stats.map.hits,
        stats.map.lookups(),
        stats.schedule.hits,
        stats.schedule.lookups(),
    );
    Ok(())
}
