//! Five-way comparison on one workload: our greedy compiler against the
//! Litinski compact/fast blocks, LSQCA Line-SAM, DASCOT, and EDPC — the
//! full related-work roster, at matched factory counts.
//!
//! Run with: `cargo run --release --example baseline_shootout`

use ftqc::arch::TimingModel;
use ftqc::baselines::litinski::{BlockLayout, GameOfSurfaceCodes};
use ftqc::baselines::{dascot_estimate, edpc_estimate, BaselineResult, LineSam};
use ftqc::benchmarks::heisenberg_2d;
use ftqc::compiler::{Compiler, CompilerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = heisenberg_2d(8); // 8x8 Heisenberg Trotter step
    let timing = TimingModel::paper();
    println!(
        "workload: {} ({} qubits, {} gates)\n",
        circuit.name(),
        circuit.num_qubits(),
        circuit.len()
    );

    for factories in [1u32, 2, 4] {
        println!("--- {factories} distillation factories ---");
        println!(
            "{:<26} {:>8} {:>10} {:>8} {:>14}",
            "approach", "qubits", "time (d)", "CPI", "volume/op"
        );

        let options = CompilerOptions::default()
            .routing_paths(5)
            .factories(factories);
        let ours = Compiler::new(options).compile(&circuit)?;
        let m = ours.metrics();
        print_row(
            "ours (greedy, r=5)",
            m.total_qubits(),
            m.execution_time.as_d(),
            m.n_gates,
        );

        let rows: Vec<BaselineResult> = vec![
            GameOfSurfaceCodes::new(BlockLayout::Compact)
                .factories(factories)
                .estimate(&circuit),
            GameOfSurfaceCodes::new(BlockLayout::Fast)
                .factories(factories)
                .estimate(&circuit),
            LineSam::new().factories(factories).estimate(&circuit),
            dascot_estimate(&circuit, Some(factories), &timing),
            edpc_estimate(&circuit, Some(factories), &timing),
        ];
        for r in rows {
            print_row(
                &r.name,
                r.total_qubits(),
                r.execution_time.as_d(),
                r.n_input_gates,
            );
        }
        println!();
    }
    println!(
        "shape check (paper §VII): ours wins volume/op at low factory counts;\n\
         DASCOT/EDPC-style routers catch up only when magic states are abundant."
    );
    Ok(())
}

fn print_row(name: &str, qubits: u32, time_d: f64, ops: usize) {
    let cpi = time_d / ops.max(1) as f64;
    let vol = qubits as f64 * time_d / ops.max(1) as f64;
    println!("{name:<26} {qubits:>8} {time_d:>10.1} {cpi:>8.2} {vol:>14.1}");
}
