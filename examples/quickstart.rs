//! Quickstart: compile a 10×10 Ising Trotter step and print the metrics
//! the paper reports (execution time vs lower bound, qubit count,
//! spacetime volume).
//!
//! Run with: `cargo run --release --example quickstart`

use ftqc::benchmarks::ising_2d;
use ftqc::compiler::{Compiler, CompilerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ising_2d(10);
    println!(
        "circuit: {} ({} qubits, {} gates: {})",
        circuit.name(),
        circuit.num_qubits(),
        circuit.len(),
        circuit.counts()
    );

    let options = CompilerOptions::default().routing_paths(4).factories(1);
    let compiled = Compiler::new(options).compile(&circuit)?;
    let m = compiled.metrics();

    println!("\n--- compiled (r=4, 1 factory) ---");
    println!("{m}");
    println!(
        "\nexecution time is {:.2}x the distillation lower bound \
         (paper reports ~1.04-1.2x for Ising at the best r)",
        m.overhead()
    );
    Ok(())
}
