//! Pareto-front exploration with the `explore` API: enumerate machine
//! configurations for a Fermi–Hubbard step and print the qubit/time Pareto
//! front plus the spacetime-volume optimum.
//!
//! Run with: `cargo run --release --example pareto_explorer`

use ftqc::benchmarks::fermi_hubbard_2d;
use ftqc::compiler::{best_by_volume, explore, pareto_front, CompilerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = fermi_hubbard_2d(6);
    println!(
        "design-space exploration for {} ({} gates, {} magic states)\n",
        circuit.name(),
        circuit.len(),
        circuit.t_count()
    );

    let points = explore(
        &circuit,
        &[2, 3, 4, 6, 8, 10, 14],
        &[1, 2, 3, 4, 6],
        &CompilerOptions::default(),
    )?;
    println!("evaluated {} configurations", points.len());

    println!("\nPareto front (qubits vs execution time):");
    println!(
        "{:>4} {:>10} {:>8} {:>10} {:>12}",
        "r", "factories", "qubits", "time (d)", "volume/op"
    );
    for p in pareto_front(&points) {
        println!(
            "{:>4} {:>10} {:>8} {:>10.0} {:>12.1}",
            p.routing_paths,
            p.factories,
            p.qubits(),
            p.time_d(),
            p.metrics.spacetime_volume_per_op(true)
        );
    }

    let best = best_by_volume(&points).expect("non-empty");
    println!(
        "\nspacetime-volume optimum: r={}, {} factories ({} qubits x {:.0}d)",
        best.routing_paths,
        best.factories,
        best.qubits(),
        best.time_d()
    );
    Ok(())
}
