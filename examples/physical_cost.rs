//! Physical resource estimation: compile a benchmark, then convert the
//! logical schedule into code distance, physical qubits and wall-clock
//! time for a superconducting-era machine.
//!
//! Run with: `cargo run --release --example physical_cost`

use ftqc::arch::qec::{estimate, PhysicalAssumptions};
use ftqc::benchmarks::ising_2d;
use ftqc::compiler::{Compiler, CompilerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ising_2d(10);
    let compiled = Compiler::new(CompilerOptions::default().routing_paths(4)).compile(&circuit)?;
    let m = compiled.metrics();

    println!(
        "logical program: {} patches x {} ({} gates)",
        m.total_qubits(),
        m.execution_time,
        m.n_gates
    );

    println!(
        "\n{:>12} {:>10} {:>16} {:>12} {:>14}",
        "phys. error", "distance", "phys. qubits", "wall clock", "logical error"
    );
    for p in [1e-3f64, 5e-4, 1e-4] {
        let assumptions = PhysicalAssumptions {
            physical_error_rate: p,
            ..PhysicalAssumptions::superconducting()
        };
        match estimate(m.total_qubits(), m.execution_time, 0.01, &assumptions) {
            Some(est) => println!(
                "{p:>12.0e} {:>10} {:>16} {:>11.2}s {:>14.2e}",
                est.code_distance,
                est.physical_qubits,
                est.wall_clock_seconds,
                est.expected_logical_error
            ),
            None => println!("{p:>12.0e} {:>10}", "infeasible"),
        }
    }
    println!(
        "\nEarly-FTQC scale: the r=4 Ising layout fits in well under 10^5 physical qubits \
         at d~15 — the 'tens to hundreds of logical qubits' regime the paper targets."
    );
    Ok(())
}
