//! Interactive edit sessions: open a circuit once, then apply small
//! edits and watch the differential compiler resume from checkpoints
//! instead of recompiling from scratch — with every differential result
//! checked byte-for-byte against a cold compile of the same circuit.
//!
//! Run with: `cargo run --release --example edit_session`

use ftqc::circuit::{Circuit, Gate};
use ftqc::compiler::{Compiler, CompilerOptions, DeltaKind, Metrics, RouteCounters};
use ftqc::editor::{CircuitEdit, EditSession, EditSet};
use std::time::Instant;

/// Route counters are provenance (cache activity differs between a warm
/// session and a cold compiler); zero them before comparing metrics.
fn normalised(m: &Metrics) -> Metrics {
    Metrics {
        route: RouteCounters::default(),
        ..*m
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small seed circuit: a GHZ-style ladder with some T gates.
    let mut circuit = Circuit::new(5);
    circuit.h(0);
    for q in 0..4 {
        circuit.cnot(q, q + 1);
        circuit.t(q + 1);
    }

    let options = CompilerOptions::default().routing_paths(4);

    // 1. Opening a session runs the initial full compile and keeps the
    //    compiled artifacts warm for every batch that follows.
    let (mut session, delta) = EditSession::open("demo", circuit.clone(), options.clone())?;
    println!(
        "opened   : v{} ({:?}, {} gates, schedule {} ticks)",
        session.version(),
        delta.kind,
        delta.gates_total,
        session.program().metrics().execution_time
    );

    // 2. An append near the end of the circuit only dirties the tail:
    //    the session re-lowers the suffix, resumes routing from the
    //    deepest sound checkpoint, and splices the timed prefix.
    let set = EditSet::new(vec![CircuitEdit::Insert {
        index: session.circuit().len(),
        gate: Gate::T(4),
    }])
    .at_version(session.version());
    let start = Instant::now();
    let (_, delta) = session.apply(&set)?;
    println!(
        "append   : v{} ({:?}) in {}µs — dirty from gate {}, resumed at op {}, {} of {} gates rerouted, {} of {} ops retimed",
        session.version(),
        delta.kind,
        start.elapsed().as_micros(),
        delta.dirty_from,
        delta.resume_cut,
        delta.gates_rerouted,
        delta.gates_total,
        delta.ops_retimed,
        delta.ops_total
    );
    assert_eq!(delta.kind, DeltaKind::Differential);

    // 3. Batches apply atomically, and every edit kind composes: here a
    //    retarget plus a replace in one version step.
    let set = EditSet::new(vec![
        CircuitEdit::Retarget {
            index: 0,
            qubits: vec![2],
        },
        CircuitEdit::Replace {
            index: 2,
            gate: Gate::S(1),
        },
    ]);
    let (_, delta) = session.apply(&set)?;
    println!(
        "batch    : v{} ({:?}{})",
        session.version(),
        delta.kind,
        delta
            .full_reason
            .as_deref()
            .map(|r| format!(", fallback: {r}"))
            .unwrap_or_default()
    );

    // 4. The wire form is one JSONL line per batch — exactly what
    //    `POST /v1/session/<id>/edit` and `ftqc edit` consume.
    let set = EditSet::parse_line(
        r#"{"edits":[{"op":"insert","index":0,"gate":{"gate":"h","qubits":[3]}},{"op":"remove","index":5}]}"#,
    )?;
    let (_, delta) = session.apply(&set)?;
    println!(
        "wire     : v{} ({:?}, digest {:016x})",
        session.version(),
        delta.kind,
        set.digest()
    );

    // 5. The contract behind it all: the session's program is
    //    indistinguishable from a cold compile of the edited circuit.
    let cold_start = Instant::now();
    let cold = Compiler::new(options).compile(session.circuit())?;
    let cold_micros = cold_start.elapsed().as_micros();
    assert_eq!(
        session.program().schedule().items(),
        cold.schedule().items()
    );
    assert_eq!(
        normalised(session.program().metrics()),
        normalised(cold.metrics())
    );
    println!("contract : schedule and metrics byte-identical to a cold compile ({cold_micros}µs)");
    println!(
        "totals   : {} edits, {} differential / {} full recompiles",
        session.edits_applied(),
        session.differential_recompiles(),
        session.full_recompiles()
    );
    Ok(())
}
