//! Sensitivity of the paper's results to the `Rz` accounting: the paper
//! charges one magic state per rotation; real synthesis (Ross–Selinger,
//! repeat-until-success) charges tens of states per rotation depending on
//! the target precision. This sweep shows how the distillation bottleneck
//! — and therefore the optimal factory count — shifts under synthesis-
//! aware accounting.
//!
//! Run with: `cargo run --release --example synthesis_sensitivity`

use ftqc::benchmarks::ising_2d;
use ftqc::circuit::SynthesisModel;
use ftqc::compiler::{Compiler, CompilerOptions, TStatePolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ising_2d(4); // 4x4 Ising: 40 Rz rotations
    println!(
        "workload: {} ({} qubits, {} non-Clifford rotations)\n",
        circuit.name(),
        circuit.num_qubits(),
        circuit.t_count(),
    );

    let models: Vec<(&str, SynthesisModel)> = vec![
        ("paper (1 per Rz)", SynthesisModel::PerRotation(1)),
        (
            "RUS eps=1e-4",
            SynthesisModel::RepeatUntilSuccess { eps: 1e-4 },
        ),
        (
            "RUS eps=1e-10",
            SynthesisModel::RepeatUntilSuccess { eps: 1e-10 },
        ),
        (
            "Ross-Selinger eps=1e-4",
            SynthesisModel::RossSelinger { eps: 1e-4 },
        ),
        (
            "Ross-Selinger eps=1e-10",
            SynthesisModel::RossSelinger { eps: 1e-10 },
        ),
    ];

    println!(
        "{:<26} {:>7} {:>12} {:>12} {:>10}",
        "accounting", "T/Rz", "magic total", "time (d)", "vs paper"
    );
    let mut paper_time = None;
    for (name, model) in models {
        let policy = TStatePolicy::from_synthesis_model(model);
        // More states per rotation justify more factories; keep the
        // factory count fixed to isolate the accounting effect.
        let options = CompilerOptions::default()
            .routing_paths(4)
            .factories(2)
            .t_state_policy(policy);
        let m = *Compiler::new(options).compile(&circuit)?.metrics();
        let t = m.execution_time.as_d();
        let base = *paper_time.get_or_insert(t);
        println!(
            "{:<26} {:>7} {:>12} {:>12.0} {:>9.1}x",
            name,
            policy.states_per_rz,
            m.n_magic_states,
            t,
            t / base,
        );
    }

    println!(
        "\nunder synthesis-aware accounting the distillation bound dominates\n\
         completely: early-FT systems running arbitrary-angle chemistry will\n\
         be limited by factories, exactly the regime the paper's\n\
         distillation-adaptive layouts target."
    );
    Ok(())
}
