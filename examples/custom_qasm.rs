//! Compile an OpenQASM 2 program (e.g. a QASMBench file): pass a path as
//! the first argument, or run without arguments to use a built-in sample.
//!
//! Run with: `cargo run --release --example custom_qasm [file.qasm]`

use ftqc::circuit::parse_qasm;
use ftqc::compiler::{Compiler, CompilerOptions};

const SAMPLE: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
t q[3];
rz(pi/8) q[1];
tdg q[0];
measure q[0] -> c[0];
measure q[3] -> c[3];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => SAMPLE.to_string(),
    };
    let circuit = parse_qasm(&source)?;
    println!(
        "parsed {} qubits, {} gates ({}), {} magic states needed",
        circuit.num_qubits(),
        circuit.len(),
        circuit.counts(),
        circuit.t_count()
    );

    for r in [2u32, 4] {
        let options = CompilerOptions::default().routing_paths(r).factories(1);
        let compiled = Compiler::new(options).compile(&circuit)?;
        println!("\n--- r={r} ---\n{}", compiled.metrics());
    }
    Ok(())
}
