//! Distillation sensitivity study: how execution time responds to the
//! magic-state production latency and the factory count (generalising the
//! paper's Fig 14(d)).
//!
//! Run with: `cargo run --release --example distillation_sweep`

use ftqc::arch::Ticks;
use ftqc::benchmarks::fermi_hubbard_2d;
use ftqc::compiler::{Compiler, CompilerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = fermi_hubbard_2d(6);
    println!(
        "distillation sensitivity for {} ({} magic states), r=6\n",
        circuit.name(),
        circuit.t_count()
    );

    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10}",
        "t_MSF (d)", "factories", "bound (d)", "exec (d)", "exec/LB"
    );
    for msf in [11.0f64, 8.0, 5.0, 2.0] {
        for f in [1u32, 2, 4] {
            let options = CompilerOptions::default()
                .routing_paths(6)
                .factories(f)
                .magic_production(Ticks::from_d(msf));
            let m = *Compiler::new(options).compile(&circuit)?.metrics();
            println!(
                "{msf:>10} {f:>10} {:>12.0} {:>12.0} {:>10.2}",
                m.lower_bound.as_d(),
                m.execution_time.as_d(),
                m.overhead()
            );
        }
    }
    println!(
        "\nAs production gets faster the distillation bound stops dominating and the \
         compiler's routing quality becomes the limiting factor."
    );
    Ok(())
}
