//! Walks a custom sparse-bus hardware target from a JSON spec through
//! validation, a staged compile, and a cross-target sweep against the
//! built-in presets.
//!
//! ```sh
//! cargo run --release --example custom_target
//! ```

use ftqc::arch::{Target, TargetRegistry, TargetSpec};
use ftqc::compiler::{
    explore_targets, target_digest, target_from_json, target_to_json, CompileSession,
    CompilerOptions, StageCache,
};
use ftqc::service::json::Value;
use ftqc::service::SharedCache;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A machine description as it would arrive from a config file or a
    // `--target @file.json` flag: an explicit bus mask (buses above and
    // left of the data block plus one interior column — provisioning the
    // routing-path family cannot express), two clustered factories, and
    // a 64-qubit cap. Unstated fields default to the paper machine.
    let doc = Value::parse(
        r#"{
            "bus": {"rows": [-1], "cols": [-1, 1]},
            "factories": 2,
            "port_placement": "clustered",
            "max_qubits": 64
        }"#,
    )?;
    let lab = target_from_json(&doc)?;
    println!("custom target digest : {:#018x}", target_digest(&lab));
    println!("canonical spec       : {}", target_to_json(&lab).render());

    // The spec validates programs before anything expensive runs.
    let circuit = ftqc::benchmarks::ising_2d(3);
    lab.validate(circuit.num_qubits(), circuit.t_count() as u64)?;
    let layout = lab.build_layout(circuit.num_qubits())?;
    println!(
        "layout               : {} bus lines, {}x{} grid, {} patches",
        lab.routing_paths(),
        layout.grid().rows(),
        layout.grid().cols(),
        layout.total_patches()
    );

    // Compile through the staged session, exactly as for a preset.
    let program = CompileSession::new(CompilerOptions::default().target(lab.clone()))
        .prepare(&circuit)?
        .lower()
        .map()?
        .schedule()?;
    let m = program.metrics();
    println!(
        "compiled             : {} execution time on {} qubits",
        m.execution_time,
        m.total_qubits()
    );

    // Register it beside the presets and run a cross-target sweep: one
    // shared stage cache, per-target Pareto fronts. The explicit mask
    // pins the custom machine's bus, so it sweeps factories only, while
    // the paper preset sweeps the full r x f grid.
    let mut registry = TargetRegistry::builtin();
    registry.register("lab", "our sparse-bus lab machine", lab);
    let targets: Vec<(String, TargetSpec)> = ["paper", "lab"]
        .iter()
        .map(|name| (name.to_string(), registry.get(name).unwrap().clone()))
        .collect();
    let sweeps = explore_targets(
        &circuit,
        &targets,
        &[2, 3, 4],
        &[1, 2],
        &CompilerOptions::default(),
        2,
        &SharedCache::in_memory(128),
        &StageCache::new(128),
    )?;
    for sweep in &sweeps {
        println!(
            "target {:<6}: {} grid points, {} on the Pareto front",
            sweep.name,
            sweep.points.len(),
            sweep.front.len()
        );
        for p in &sweep.front {
            println!(
                "  r={} f={} -> {} qubits, {} (volume {:.0} qubit-d)",
                p.routing_paths,
                p.factories,
                p.qubits(),
                p.metrics.execution_time,
                p.volume()
            );
        }
    }

    // Built-in Target implementations work the same way.
    println!(
        "preset fast-d cnot   : {} (paper: 2d)",
        ftqc::arch::FastD.timing().cnot
    );
    Ok(())
}
