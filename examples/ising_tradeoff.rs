//! Space-time trade-off explorer: sweep routing paths and factory counts
//! for an Ising Trotter step and report the spacetime-volume-optimal
//! configuration — the workflow a hardware designer would use to size an
//! early-FTQC machine (paper §VII.B).
//!
//! Run with: `cargo run --release --example ising_tradeoff`

use ftqc::benchmarks::ising_2d;
use ftqc::compiler::{Compiler, CompilerOptions, Metrics};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ising_2d(6); // 6x6 = 36 spins
    println!(
        "exploring space-time trade-offs for {} ({} gates, {} magic states)\n",
        circuit.name(),
        circuit.len(),
        circuit.t_count()
    );

    let mut best: Option<(u32, u32, Metrics)> = None;
    println!(
        "{:>4} {:>10} {:>8} {:>10} {:>12}",
        "r", "factories", "qubits", "time (d)", "volume/op"
    );
    for r in [2u32, 3, 4, 6, 8, 10, 14] {
        for f in [1u32, 2, 3, 4, 6] {
            let options = CompilerOptions::default().routing_paths(r).factories(f);
            let m = *Compiler::new(options).compile(&circuit)?.metrics();
            let vol = m.spacetime_volume_per_op(true);
            println!(
                "{r:>4} {f:>10} {:>8} {:>10.0} {vol:>12.1}",
                m.total_qubits(),
                m.execution_time.as_d()
            );
            if best
                .as_ref()
                .is_none_or(|(_, _, b)| vol < b.spacetime_volume_per_op(true))
            {
                best = Some((r, f, m));
            }
        }
    }

    let (r, f, m) = best.expect("at least one configuration compiled");
    println!(
        "\noptimal configuration: r={r}, {f} factories -> {} qubits, {} execution time \
         ({:.2}x the distillation bound)",
        m.total_qubits(),
        m.execution_time,
        m.overhead()
    );
    Ok(())
}
