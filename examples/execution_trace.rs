//! Visualise an execution: the activity strip (one glyph per timestep
//! bucket) and the busy-time breakdown by operation kind, showing how the
//! compiler hides movement inside the distillation windows.
//!
//! Run with: `cargo run --release --example execution_trace`

use ftqc::benchmarks::ising_2d;
use ftqc::compiler::{activity_strip, kind_breakdown, Compiler, CompilerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ising_2d(4);
    let compiled = Compiler::new(CompilerOptions::default().routing_paths(4)).compile(&circuit)?;
    let m = compiled.metrics();
    println!("{} compiled: {}\n", circuit.name(), m.execution_time);

    println!("activity strip (4d per glyph; C=consume, D=deliver, G=gate, m=move, .=idle):");
    let strip = activity_strip(&compiled, 4.0);
    for chunk in strip.as_bytes().chunks(80) {
        println!("{}", std::str::from_utf8(chunk)?);
    }

    let b = kind_breakdown(&compiled);
    println!("\nbusy volume by kind (qubit-d):");
    println!("  moves      {:>8.1}", b.moves);
    println!("  deliveries {:>8.1}", b.deliveries);
    println!("  consumes   {:>8.1}", b.consumes);
    println!("  cnots      {:>8.1}", b.cnots);
    println!("  singles    {:>8.1}", b.singles);
    println!("  other      {:>8.1}", b.other);
    println!(
        "  total      {:>8.1} of {:.0} qubit-d capacity",
        b.total(),
        m.total_qubits() as f64 * m.execution_time.as_d()
    );
    Ok(())
}
