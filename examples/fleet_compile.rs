//! Distributed fleet walkthrough: start two worker servers and a
//! coordinator in-process on loopback ports, push a JSONL batch through
//! the coordinator, and watch the witness-verification and peer-cache
//! counters move.
//!
//! In production each process is simply
//!
//! ```text
//! ftqc serve --worker --addr host1:7071 --peers host1:7071,host2:7072 --advertise host1:7071
//! ftqc serve --worker --addr host2:7072 --peers host1:7071,host2:7072 --advertise host2:7072
//! ftqc serve --fleet host1:7071,host2:7072 --addr 0.0.0.0:7070
//! ```
//!
//! and any HTTP client of the coordinator works unchanged — the fleet is
//! invisible except for the extra `/metrics` families.
//!
//! Run with: `cargo run --release --example fleet_compile`

use ftqc::fleet::{CoordinatorConfig, CoordinatorExtension, WorkerConfig, WorkerExtension};
use ftqc::server::{Client, RetryPolicy, Server, ServerConfig, ShutdownHandle};
use ftqc::service::Value;
use std::sync::Arc;
use std::time::Duration;

fn serve(
    addr: &str,
    extension: Option<Arc<dyn ftqc::server::ServerExtension>>,
) -> Result<(String, ShutdownHandle, std::thread::JoinHandle<()>), Box<dyn std::error::Error>> {
    let server = Server::bind_with(
        ServerConfig {
            addr: addr.into(),
            workers: 2,
            ..ServerConfig::default()
        },
        extension,
    )?;
    let addr = server.local_addr()?.to_string();
    let handle = server.handle()?;
    let thread = std::thread::spawn(move || {
        let _ = server.run();
    });
    Ok((addr, handle, thread))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Two workers forming a two-node peer-cache ring. Peered workers
    //    need to know each other's addresses up front, so reserve two
    //    loopback ports first.
    let reserve = |_: ()| -> Result<String, std::io::Error> {
        Ok(std::net::TcpListener::bind("127.0.0.1:0")?
            .local_addr()?
            .to_string())
    };
    let (a1, a2) = (reserve(())?, reserve(())?);
    let peers = vec![a1.clone(), a2.clone()];
    let worker = |advertise: &str| -> Result<Arc<WorkerExtension>, Box<dyn std::error::Error>> {
        Ok(Arc::new(WorkerExtension::new(WorkerConfig {
            peers: peers.clone(),
            advertise: Some(advertise.into()),
            ..WorkerConfig::default()
        })?))
    };
    let (_, h1, t1) = serve(&a1, Some(worker(&a1)?))?;
    let (_, h2, t2) = serve(&a2, Some(worker(&a2)?))?;
    println!("workers listening on {a1} and {a2}");

    // 2. The coordinator: same /v1/* surface as a plain server, but
    //    compile/batch jobs fan out to the workers and every result is
    //    re-verified from its witness before being accepted.
    let coordinator = Arc::new(CoordinatorExtension::new(CoordinatorConfig {
        workers: peers.clone(),
        cap: 2,
        deadline: Duration::from_secs(30),
        retry: RetryPolicy::default(),
    })?);
    println!(
        "coordinator sees {}/{} workers healthy",
        coordinator.health_check(),
        peers.len()
    );
    let (coord, hc, tc) = serve("127.0.0.1:0", Some(coordinator.clone()))?;

    // 3. A JSONL batch through the coordinator — six jobs over an options
    //    grid, exactly what `ftqc client batch` would send.
    let jsonl: String = [2u32, 3, 4]
        .iter()
        .flat_map(|r| [1u32, 2].iter().map(move |f| (r, f)))
        .map(|(r, f)| {
            format!(
                "{{\"id\":\"r{r}f{f}\",\"source\":{{\"benchmark\":\"ising\",\"size\":2}},\
                 \"options\":{{\"routing_paths\":{r},\"factories\":{f}}}}}"
            )
        })
        .collect::<Vec<_>>()
        .join("\n");
    let client = Client::new(coord.clone());
    let results = client.batch(&jsonl)?;
    for r in &results {
        println!(
            "  {:<6} {} in {} µs ({})",
            r.id,
            if r.is_ok() { "ok    " } else { "FAILED" },
            r.micros,
            r.provenance.as_str()
        );
    }

    // 4. The fleet counters: every accepted job was dispatched once and
    //    verified once; nothing was quarantined or recomputed locally.
    let stats = client.get_value("/v1/cache/stats")?;
    let fleet = stats.get("fleet").expect("coordinator stats");
    for key in ["dispatch", "verify", "quarantine", "local_recompute"] {
        println!(
            "  fleet {key:<16} {}",
            fleet.get(key).and_then(Value::as_u64).unwrap_or(0)
        );
    }

    // 5. Shut everything down gracefully, workers last.
    hc.shutdown();
    tc.join().ok();
    h1.shutdown();
    h2.shutdown();
    t1.join().ok();
    t2.join().ok();
    println!("fleet drained cleanly");
    Ok(())
}
