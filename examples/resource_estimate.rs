//! Hardware planning: from a logical circuit and a physical error rate to a
//! complete machine specification (code distance, distillation protocol,
//! layout, physical qubit count, wall-clock time).
//!
//! The paper's evaluation stays in logical units; this example shows the
//! library closing the loop to physical resources — the question an
//! early-FTQC roadmap actually asks.
//!
//! Run with: `cargo run --release --example resource_estimate`

use ftqc::arch::qec::PhysicalAssumptions;
use ftqc::benchmarks::ising_2d;
use ftqc::compiler::estimate::{estimate_resources, EstimateRequest, Objective};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ising_2d(6); // 6x6 Ising Trotter step
    println!(
        "planning hardware for {} ({} qubits, {} gates, {} T-like rotations)\n",
        circuit.name(),
        circuit.num_qubits(),
        circuit.len(),
        circuit.t_count(),
    );

    println!("=== sweep over physical error rates (objective: fewest physical qubits) ===");
    for p in [1e-3, 5e-4, 1e-4] {
        let request = EstimateRequest {
            assumptions: PhysicalAssumptions {
                physical_error_rate: p,
                ..PhysicalAssumptions::superconducting()
            },
            ..Default::default()
        };
        match estimate_resources(&circuit, &request) {
            Ok(e) => {
                println!("p = {p:.0e}:");
                println!("{e}\n");
            }
            Err(err) => println!("p = {p:.0e}: {err}\n"),
        }
    }

    println!("=== objective trade-off at p = 1e-3 ===");
    for objective in [
        Objective::PhysicalQubits,
        Objective::SpacetimeVolume,
        Objective::WallClock,
    ] {
        let request = EstimateRequest {
            objective,
            ..Default::default()
        };
        let e = estimate_resources(&circuit, &request)?;
        println!(
            "{objective:<18} -> r={} f={} d={} {:>9} phys qubits, {:.3} s",
            e.routing_paths, e.factories, e.code_distance, e.physical_qubits, e.wall_clock_seconds
        );
    }
    Ok(())
}
