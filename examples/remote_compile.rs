//! Remote compilation walkthrough: start the HTTP compile server
//! in-process on an ephemeral port, drive every endpoint through the
//! blocking client API, and shut it down gracefully.
//!
//! In production the server side of this example is simply
//! `ftqc serve --addr 0.0.0.0:7070 --cache compile-cache.json`; the client
//! half works unchanged against any address.
//!
//! Run with: `cargo run --release --example remote_compile`

use ftqc::compiler::CompilerOptions;
use ftqc::server::{Client, Server, ServerConfig, SweepRequest};
use ftqc::service::{CircuitSource, CompileJob};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A server on an ephemeral loopback port. `ftqc serve` does exactly
    //    this with a fixed address and a SIGINT hook.
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServerConfig::default()
    })?;
    let addr = server.local_addr()?;
    let handle = server.handle()?;
    let server_thread = std::thread::spawn(move || server.run());
    println!("server listening on {addr}");

    let client = Client::new(addr.to_string());

    // 2. One compile job: a built-in benchmark at r=4. The result carries
    //    metrics, the content-addressed fingerprint, and cache provenance.
    let job = CompileJob::new(
        "ising-r4",
        CircuitSource::Benchmark {
            name: "ising".into(),
            size: Some(4),
        },
        CompilerOptions::default().routing_paths(4),
    );
    let first = client.compile(&job)?;
    println!(
        "first compile : {} in {} µs ({})",
        first.id,
        first.micros,
        first.provenance.as_str()
    );

    // 3. The same job again: the server's shared cache answers without
    //    recompiling — that is the point of a long-lived daemon.
    let again = client.compile(&job)?;
    println!(
        "second compile: {} in {} µs ({})",
        again.id,
        again.micros,
        again.provenance.as_str()
    );
    assert!(
        again.provenance.is_hit(),
        "repeat must be served from cache"
    );
    assert_eq!(again.metrics, first.metrics);

    // 4. A JSONL batch — a malformed line fails alone, not the batch.
    let results = client.batch(concat!(
        "{\"id\":\"r3\",\"source\":{\"benchmark\":\"ising\",\"size\":4},\"options\":{\"routing_paths\":3}}\n",
        "{this line is broken}\n",
        "{\"id\":\"r5\",\"source\":{\"benchmark\":\"ising\",\"size\":4},\"options\":{\"routing_paths\":5}}\n",
    ))?;
    for r in &results {
        println!(
            "batch result  : {:<8} ok={} ({})",
            r.id,
            r.is_ok(),
            r.provenance.as_str()
        );
    }

    // 5. A Pareto sweep over the (routing paths × factories) grid. Grid
    //    points the compile/batch calls above already computed come out of
    //    the shared cache.
    let sweep = client.sweep(&SweepRequest {
        pareto: true,
        ..SweepRequest::new(CircuitSource::Benchmark {
            name: "ising".into(),
            size: Some(4),
        })
    })?;
    println!("pareto front  : {} points", sweep.points.len());
    for p in &sweep.points {
        println!(
            "                r={} f={} -> {} qubits, {:.1} d",
            p.routing_paths,
            p.factories,
            p.qubits(),
            p.time_d()
        );
    }

    // 6. Observability: cache counters and the Prometheus exposition.
    let stats = client.cache_stats()?;
    println!(
        "cache         : {} hits / {} lookups ({:.0}%)",
        stats.hits,
        stats.lookups(),
        stats.hit_rate() * 100.0
    );
    let metrics = client.metrics_text()?;
    let requests_line = metrics
        .lines()
        .find(|l| l.starts_with("ftqc_http_requests_total{endpoint=\"compile\"}"))
        .unwrap_or("ftqc_http_requests_total{endpoint=\"compile\"} ?");
    println!("prometheus    : {requests_line}");

    // 7. Graceful shutdown: in-flight requests drain, the report sums up.
    handle.shutdown();
    let report = server_thread.join().expect("server thread")?;
    println!(
        "shut down     : {} requests over {} connections",
        report.requests, report.connections
    );
    Ok(())
}
