//! End-to-end verified compilation: compile a circuit, then prove the
//! schedule (a) physically executable and (b) semantically equivalent to
//! the input, by replaying every patch movement and checking the realised
//! gate sequence against three independent oracles (trace projection,
//! Clifford tableau, dense state vector).
//!
//! Run with: `cargo run --release --example verified_compilation`

use ftqc::arch::TimingModel;
use ftqc::circuit::{Angle, Circuit};
use ftqc::compiler::{check_semantics, verify, Compiler, CompilerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-qubit kernel mixing everything the ISA supports: Cliffords,
    // T gates, arbitrary rotations, CZ/SWAP (lowered), and measurement.
    let mut c = Circuit::with_name(8, "verified-kernel");
    c.h(0).cnot(0, 1).t(1).cz(1, 2).swap(2, 3);
    c.rz(3, Angle::new(0.3)).sx(4).cnot(4, 5).tdg(5);
    c.rz(6, Angle::new(0.5)) // Clifford rotation: becomes an S
        .cnot(6, 7)
        .measure(7);

    println!(
        "input: {} ({} qubits, {} gates)",
        c.name(),
        c.num_qubits(),
        c.len()
    );

    let options = CompilerOptions::default().routing_paths(4).factories(1);
    let program = Compiler::new(options).compile(&c)?;
    let m = program.metrics();
    println!(
        "compiled: {} surgery ops ({} moves), makespan {}",
        m.n_surgery_ops, m.n_moves, m.execution_time
    );

    // Physical: placement constraints, cell exclusivity, factory spacing.
    verify(&program, &TimingModel::paper())?;
    println!("physical verification  : ok");

    // Semantic: replay the schedule, track every patch, rebuild the logical
    // circuit and prove equivalence.
    let report = check_semantics(&c, &program)?;
    println!("semantic verification  : ok ({report})");

    println!(
        "\nevery compiled schedule in this repository's tests passes both\n\
         verifiers; run `ftqc compile <circuit> --verify --semantics` to\n\
         check your own."
    );
    Ok(())
}
